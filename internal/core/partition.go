package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

// Policy selects how the clustered peptide order is distributed across the
// machines of the system (paper §III-D).
type Policy uint8

const (
	// Chunk splits the clustered order into p contiguous blocks; it is the
	// conventional shared-memory partitioning and the paper's baseline.
	Chunk Policy = iota
	// Cyclic deals peptides round-robin over the machines, spreading every
	// group across the whole system; the paper's best policy.
	Cyclic
	// Random shuffles the clustered order with a seeded PRNG and then
	// chunk-splits it; quality depends on the seed (paper §III-D3).
	Random
	// RandomWithinGroups is an ablation variant of Random that shuffles
	// only within each group before chunk-splitting, preserving group
	// locality at chunk boundaries.
	RandomWithinGroups
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Chunk:
		return "chunk"
	case Cyclic:
		return "cyclic"
	case Random:
		return "random"
	case RandomWithinGroups:
		return "random-within-groups"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// MarshalJSON encodes the policy as its String name, keeping persisted
// session manifests readable and stable across renumbering.
func (p Policy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON decodes a policy name as written by MarshalJSON.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParsePolicy(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// ParsePolicy converts a policy name as printed by String back to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "chunk":
		return Chunk, nil
	case "cyclic":
		return Cyclic, nil
	case "random":
		return Random, nil
	case "random-within-groups":
		return RandomWithinGroups, nil
	}
	return 0, fmt.Errorf("core: unknown policy %q", s)
}

// Partition assigns the clustered peptide order to p machines under the
// given policy. The result's Assign[m] lists, for machine m, the positions
// in clustered order (indices into Grouping.Order) it owns. For the
// deterministic policies (Chunk, Cyclic) the positions are in ascending
// order; the Random policies list them in shuffled assignment order.
//
// seed is used only by the Random policies.
type Partition struct {
	Policy Policy
	P      int
	// Assign[m] holds clustered-order positions owned by machine m.
	Assign [][]int
}

// PartitionClustered distributes n clustered positions over p machines.
// The grouping is required by the group-aware policies and for n.
func PartitionClustered(g Grouping, p int, policy Policy, seed int64) (Partition, error) {
	if p < 1 {
		return Partition{}, fmt.Errorf("core: machine count %d must be >= 1", p)
	}
	n := len(g.Order)
	part := Partition{Policy: policy, P: p, Assign: make([][]int, p)}

	switch policy {
	case Chunk:
		// pep(m) = { i | N/p * m <= i < N/p * (m+1) } with remainder spread
		// over the leading machines.
		base, rem := n/p, n%p
		pos := 0
		for m := 0; m < p; m++ {
			sz := base
			if m < rem {
				sz++
			}
			part.Assign[m] = makeRange(pos, pos+sz)
			pos += sz
		}

	case Cyclic:
		// pep(m) = { i | i mod p == m } over the clustered order.
		for m := 0; m < p; m++ {
			part.Assign[m] = make([]int, 0, n/p+1)
		}
		for i := 0; i < n; i++ {
			m := i % p
			part.Assign[m] = append(part.Assign[m], i)
		}

	case Random:
		// chunk(shuffle(i)): shuffle the whole clustered order, then chunk.
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		base, rem := n/p, n%p
		pos := 0
		for m := 0; m < p; m++ {
			sz := base
			if m < rem {
				sz++
			}
			part.Assign[m] = append([]int(nil), perm[pos:pos+sz]...)
			pos += sz
		}

	case RandomWithinGroups:
		// Shuffle within each group, then deal each group's members to
		// machines round-robin starting at a rotating offset so small
		// groups do not always favor machine 0.
		rng := rand.New(rand.NewSource(seed))
		for m := 0; m < p; m++ {
			part.Assign[m] = make([]int, 0, n/p+1)
		}
		start := 0
		rot := 0
		for _, sz := range g.Sizes {
			members := makeRange(start, start+sz)
			rng.Shuffle(len(members), func(i, j int) {
				members[i], members[j] = members[j], members[i]
			})
			for k, pos := range members {
				m := (rot + k) % p
				part.Assign[m] = append(part.Assign[m], pos)
			}
			rot = (rot + sz) % p
			start += sz
		}

	default:
		return Partition{}, fmt.Errorf("core: unknown policy %v", policy)
	}
	return part, nil
}

func makeRange(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// MachineOf returns, for every clustered position, the machine that owns
// it. It is the inverse view of Assign.
func (p Partition) MachineOf() []int {
	n := 0
	for _, a := range p.Assign {
		n += len(a)
	}
	out := make([]int, n)
	for m, a := range p.Assign {
		for _, pos := range a {
			out[pos] = m
		}
	}
	return out
}

// Sizes returns the number of peptides per machine.
func (p Partition) Sizes() []int {
	out := make([]int, p.P)
	for m, a := range p.Assign {
		out[m] = len(a)
	}
	return out
}

// GlobalIndices resolves machine m's clustered positions to original
// peptide-list indices using the grouping's Order.
func (p Partition) GlobalIndices(g Grouping, m int) []uint32 {
	a := p.Assign[m]
	out := make([]uint32, len(a))
	for i, pos := range a {
		out[i] = uint32(g.Order[pos])
	}
	return out
}
