package fasta

import (
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadBasic(t *testing.T) {
	in := ">sp|P1|PROT1 first protein\nMKT\nLLVA\n>P2\nGGG\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Header != "sp|P1|PROT1 first protein" {
		t.Errorf("header = %q", recs[0].Header)
	}
	if recs[0].ID() != "sp|P1|PROT1" {
		t.Errorf("ID = %q", recs[0].ID())
	}
	if recs[0].Sequence != "MKTLLVA" {
		t.Errorf("sequence = %q", recs[0].Sequence)
	}
	if recs[1].ID() != "P2" || recs[1].Sequence != "GGG" {
		t.Errorf("second record = %+v", recs[1])
	}
}

func TestReadLowercaseAndBlank(t *testing.T) {
	in := ">p\n\n  mk tl \n\nga\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Sequence != "MKTLGA" {
		t.Errorf("sequence = %q", recs[0].Sequence)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("GARBAGE\n>ok\nAA\n")); err == nil {
		t.Error("leading junk should fail")
	}
	if _, err := ReadAll(strings.NewReader(">empty\n>next\nAA\n")); err == nil {
		t.Error("empty sequence should fail")
	}
}

func TestReadEmptyInput(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from empty input", len(recs))
	}
}

func TestReaderEOFRepeat(t *testing.T) {
	r := NewReader(strings.NewReader(">a\nAA\n"))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Read(); err != io.EOF {
			t.Fatalf("read %d: err = %v, want EOF", i, err)
		}
	}
}

func TestWriterWrapping(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Width = 4
	if err := w.Write(Record{Header: "h", Sequence: "ABCDEFGHIJ"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := ">h\nABCD\nEFGH\nIJ\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const alpha = "ACDEFGHIKLMNPQRSTVWY"
	f := func(n uint8) bool {
		count := int(n%5) + 1
		recs := make([]Record, count)
		for i := range recs {
			var sb strings.Builder
			for j := 0; j < rng.Intn(200)+1; j++ {
				sb.WriteByte(alpha[rng.Intn(len(alpha))])
			}
			recs[i] = Record{
				Header:   "prot" + string(rune('A'+i)) + " desc",
				Sequence: sb.String(),
			}
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, recs); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.fasta")
	recs := []Record{{Header: "a", Sequence: "MKV"}, {Header: "b x", Sequence: "GGR"}}
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.fasta")); err == nil {
		t.Error("missing file should fail")
	}
}
