package fasta

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReader asserts the FASTA parser never panics and that parsed
// records survive a write/reparse cycle.
func FuzzReader(f *testing.F) {
	f.Add(">p1 desc\nMKTL\nLVA\n>p2\nGGG\n")
	f.Add("")
	f.Add(">\n\n")
	f.Add("junk before header\n>x\nAA\n")
	f.Add(">lower\nacgt\n")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadAll(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, recs); err != nil {
			t.Fatalf("writer failed on parser output: %v", err)
		}
		again, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("record count changed: %d -> %d", len(recs), len(again))
		}
	})
}
