// Package fasta reads and writes protein sequence databases in FASTA
// format, the interchange format used throughout the pipeline (UniProt
// downloads, Digestor output, and LBE's clustered databases are all FASTA).
package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// Record is one FASTA entry: a header (without the leading '>') and the
// sequence with whitespace removed.
type Record struct {
	Header   string
	Sequence string
}

// ID returns the first whitespace-delimited token of the header, the
// conventional accession/identifier.
func (r Record) ID() string {
	if i := strings.IndexAny(r.Header, " \t"); i >= 0 {
		return r.Header[:i]
	}
	return r.Header
}

// Reader parses FASTA records from an input stream.
type Reader struct {
	s       *bufio.Scanner
	pending string // next header line, carried across Read calls
	started bool
	line    int
}

// NewReader returns a Reader consuming from r. Sequences of arbitrary line
// length are supported.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{s: s}
}

// Read returns the next record, or io.EOF when the stream is exhausted.
func (r *Reader) Read() (Record, error) {
	var rec Record
	var seq bytes.Buffer

	if r.pending == "" {
		// Scan forward to the first header.
		for r.s.Scan() {
			r.line++
			line := strings.TrimSpace(r.s.Text())
			if line == "" {
				continue
			}
			if !strings.HasPrefix(line, ">") {
				if !r.started {
					return rec, fmt.Errorf("fasta: line %d: expected '>' header, got %q", r.line, truncate(line))
				}
				return rec, fmt.Errorf("fasta: line %d: sequence data outside record", r.line)
			}
			r.pending = line
			break
		}
		if err := r.s.Err(); err != nil {
			return rec, fmt.Errorf("fasta: %w", err)
		}
		if r.pending == "" {
			return rec, io.EOF
		}
	}

	r.started = true
	rec.Header = strings.TrimSpace(strings.TrimPrefix(r.pending, ">"))
	r.pending = ""

	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			r.pending = line
			break
		}
		seq.WriteString(strings.ToUpper(strings.Map(dropSpace, line)))
	}
	if err := r.s.Err(); err != nil {
		return rec, fmt.Errorf("fasta: %w", err)
	}
	rec.Sequence = seq.String()
	if rec.Sequence == "" {
		return rec, fmt.Errorf("fasta: record %q has empty sequence", rec.ID())
	}
	return rec, nil
}

func dropSpace(r rune) rune {
	if r == ' ' || r == '\t' {
		return -1
	}
	return r
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}

// ReadAll parses every record from r.
func ReadAll(r io.Reader) ([]Record, error) {
	fr := NewReader(r)
	var recs []Record
	for {
		rec, err := fr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// ReadFile parses every record from the named file.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// Writer emits FASTA records with a fixed sequence line width.
type Writer struct {
	w     *bufio.Writer
	Width int // sequence characters per line; <=0 means single line
}

// NewWriter returns a Writer emitting to w with the conventional 60-column
// sequence wrap.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), Width: 60}
}

// Write emits one record.
func (w *Writer) Write(rec Record) error {
	if _, err := fmt.Fprintf(w.w, ">%s\n", rec.Header); err != nil {
		return err
	}
	seq := rec.Sequence
	if w.Width <= 0 {
		_, err := fmt.Fprintln(w.w, seq)
		return err
	}
	for len(seq) > 0 {
		n := w.Width
		if n > len(seq) {
			n = len(seq)
		}
		if _, err := fmt.Fprintln(w.w, seq[:n]); err != nil {
			return err
		}
		seq = seq[n:]
	}
	return nil
}

// Flush writes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteAll writes every record to w and flushes.
func WriteAll(w io.Writer, recs []Record) error {
	fw := NewWriter(w)
	for _, rec := range recs {
		if err := fw.Write(rec); err != nil {
			return err
		}
	}
	return fw.Flush()
}

// WriteFile writes every record to the named file.
func WriteFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteAll(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
