//go:build linux

package mmapio

import "syscall"

// madvise translates an Advice to the corresponding MADV_* hint.
func madvise(b []byte, a Advice) error {
	adv := syscall.MADV_NORMAL
	switch a {
	case AdviceRandom:
		adv = syscall.MADV_RANDOM
	case AdviceSequential:
		adv = syscall.MADV_SEQUENTIAL
	case AdviceWillNeed:
		adv = syscall.MADV_WILLNEED
	}
	return syscall.Madvise(b, adv)
}
