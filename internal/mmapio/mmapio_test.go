package mmapio

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenReadsFileBytes(t *testing.T) {
	want := bytes.Repeat([]byte("mmapio"), 1000)
	m, err := Open(writeTemp(t, want))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if runtime.GOOS == "linux" && !m.Mapped() {
		t.Error("expected a real mapping on linux")
	}
	if m.Len() != len(want) || !bytes.Equal(m.Bytes(), want) {
		t.Errorf("mapped bytes differ from file contents (len %d vs %d)", m.Len(), len(want))
	}
	// Advice is best-effort but must never fail on a live mapping.
	for _, a := range []Advice{AdviceNormal, AdviceRandom, AdviceSequential, AdviceWillNeed} {
		if err := m.Advise(a); err != nil {
			t.Errorf("Advise(%d): %v", a, err)
		}
	}
}

func TestOpenEmptyFile(t *testing.T) {
	m, err := Open(writeTemp(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 0 || m.Mapped() {
		t.Errorf("empty file: len=%d mapped=%v, want 0/false", m.Len(), m.Mapped())
	}
}

func TestOpenMissingAndIrregular(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file must fail")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("directory must fail")
	}
}

func TestCloseIdempotent(t *testing.T) {
	m, err := Open(writeTemp(t, []byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if m.Bytes() != nil {
		t.Error("Bytes must be nil after Close")
	}
	if m.Advise(AdviceRandom) != nil {
		t.Error("Advise after Close must be a no-op")
	}
}
