//go:build !linux

package mmapio

// madvise is a no-op on platforms without the madvise syscall; hints are
// best-effort by contract.
func madvise(_ []byte, _ Advice) error {
	return nil
}
