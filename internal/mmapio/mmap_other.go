//go:build !unix

package mmapio

import (
	"errors"
	"os"
)

// mmapFile reports mmap as unsupported, routing Open to the heap-read
// fallback.
func mmapFile(_ *os.File, _ int) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

// munmap is unreachable on platforms without mmapFile support.
func munmap(_ []byte) error {
	return nil
}
