// Package mmapio provides read-only memory-mapped file access with a
// portable heap-read fallback.
//
// A Mapping opened on a unix system is backed by mmap(2): the bytes are
// served from the kernel page cache, so opening costs no read or copy,
// resident memory is shared between every process mapping the same file,
// and clean pages are reclaimable under memory pressure. On platforms
// without mmap — or when the mapping syscall fails — Open silently falls
// back to reading the file into the heap, so callers get identical
// semantics everywhere and only the performance profile differs
// (Mapped reports which mode a Mapping is in).
//
// The returned bytes are read-only by contract. Writing to a mapped
// region faults; writing to a fallback region silently diverges from the
// file. Callers must treat Bytes as immutable.
package mmapio

import (
	"fmt"
	"os"
	"runtime"
	"sync"
)

// Advice is a usage hint forwarded to madvise(2) where supported (Linux);
// elsewhere hints are accepted and ignored.
type Advice int

// The supported access-pattern hints.
const (
	// AdviceNormal restores the kernel's default readahead.
	AdviceNormal Advice = iota
	// AdviceRandom disables readahead for pointer-chasing access.
	AdviceRandom
	// AdviceSequential aggressively reads ahead for linear scans.
	AdviceSequential
	// AdviceWillNeed asks the kernel to start faulting pages in now.
	AdviceWillNeed
)

// Mapping is one open read-only view of a file: memory-mapped when the
// platform allows it, a heap copy otherwise. The view returned by Bytes
// is valid until Close; a Mapping that is garbage-collected without
// Close unmaps itself via a finalizer, so holding the Mapping (or a
// struct containing it) alive is what keeps derived views safe.
//
// Close is safe to call twice but must not race readers of Bytes.
type Mapping struct {
	mu     sync.Mutex
	data   []byte
	mapped bool
	closed bool
}

// Open maps the named file read-only. Empty files yield a valid Mapping
// with zero-length Bytes. If the platform cannot map (or the mmap
// syscall fails), the file is read into the heap instead and Mapped
// reports false.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if !fi.Mode().IsRegular() {
		return nil, fmt.Errorf("mmapio: %s is not a regular file", path)
	}
	size := fi.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if int64(int(size)) != size || size < 0 {
		return nil, fmt.Errorf("mmapio: %s is %d bytes, beyond the addressable range", path, size)
	}

	if data, err := mmapFile(f, int(size)); err == nil {
		m := &Mapping{data: data, mapped: true}
		runtime.SetFinalizer(m, (*Mapping).finalize)
		return m, nil
	}

	// Portable fallback: a private heap copy with identical read
	// semantics (no page-cache sharing, no RSS savings).
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != size {
		return nil, fmt.Errorf("mmapio: %s changed size during open", path)
	}
	return &Mapping{data: data}, nil
}

// Bytes returns the file contents. The slice must be treated as
// read-only and is valid only until Close (or until the Mapping becomes
// unreachable). It returns nil after Close.
func (m *Mapping) Bytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	return m.data
}

// Len returns the mapped length in bytes (0 after Close).
func (m *Mapping) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0
	}
	return len(m.data)
}

// Mapped reports whether the Mapping is backed by mmap rather than a
// heap copy.
func (m *Mapping) Mapped() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mapped && !m.closed
}

// Advise forwards an access-pattern hint to the kernel for a mapped
// region; on heap fallbacks and platforms without madvise it is a no-op.
func (m *Mapping) Advise(a Advice) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || !m.mapped || len(m.data) == 0 {
		return nil
	}
	return madvise(m.data, a)
}

// Close releases the mapping (or drops the heap copy). Every view
// previously returned by Bytes becomes invalid: touching one after Close
// faults on mapped platforms. Close is idempotent.
func (m *Mapping) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	data := m.data
	m.data = nil
	if m.mapped {
		runtime.SetFinalizer(m, nil)
		m.mapped = false
		return munmap(data)
	}
	return nil
}

// finalize is the GC-time safety net for mappings dropped without Close.
func (m *Mapping) finalize() {
	m.Close()
}
