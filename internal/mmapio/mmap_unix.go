//go:build unix

package mmapio

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so the page cache
// backs every co-located process mapping the same file once.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmap releases a region obtained from mmapFile.
func munmap(b []byte) error {
	return syscall.Munmap(b)
}
