package engine

import (
	"sync"

	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// searchAll searches the query batch against the index with the requested
// intra-rank parallelism — the hybrid "OpenMP within MPI" mode of the
// paper's future work (§VIII). Results and accumulated work are identical
// to the serial path for any thread count; only wall time changes.
func searchAll(ix *slm.Index, qs []spectrum.Experimental, threads int) ([][]slm.Match, slm.Work) {
	if threads <= 1 || len(qs) < 2 {
		return ix.SearchAll(qs, 0)
	}
	if threads > len(qs) {
		threads = len(qs)
	}

	out := make([][]slm.Match, len(qs))
	works := make([]slm.Work, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			var scratch slm.Scratch
			// Strided assignment keeps per-thread work even when query
			// difficulty varies along the batch.
			for q := t; q < len(qs); q += threads {
				m, w := ix.Search(qs[q], 0, &scratch)
				out[q] = m
				works[t].Add(w)
			}
		}(t)
	}
	wg.Wait()

	var total slm.Work
	for _, w := range works {
		total.Add(w)
	}
	return out, total
}
