package engine

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lbe/internal/core"
)

// mergeSetPSMs reproduces the scatter/gather front-end merge at the
// engine level: concatenate every set's per-query PSMs, re-sort with the
// engine comparator, and truncate to topK.
func mergeSetPSMs(parts [][][]PSM, topK int) [][]PSM {
	out := make([][]PSM, len(parts[0]))
	for q := range out {
		merged := make([]PSM, 0)
		for _, p := range parts {
			merged = append(merged, p[q]...)
		}
		sortPSMs(merged)
		if topK > 0 && len(merged) > topK {
			merged = merged[:topK]
		}
		out[q] = merged
	}
	return out
}

// TestSavePartitionedScatterGatherEquivalence is the engine half of the
// tentpole guarantee: for several partition counts, opening every
// shard-set slice of a partitioned store, searching each independently,
// and merging the per-set top-K yields PSMs identical to the whole-store
// Session.Search — global peptide identities, global shard Origins, exact
// scores.
func TestSavePartitionedScatterGatherEquivalence(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 40)
	ctx := context.Background()
	cfg := SessionConfig{Config: lightConfig(), Shards: 5}
	cfg.Policy = core.Cyclic
	cfg.TopK = 4 // exercise the per-set top-K union ⊇ global top-K argument

	whole, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()
	want, err := whole.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}

	for _, sets := range []int{1, 2, 3, 5} {
		dir := filepath.Join(t.TempDir(), "cluster")
		cm, err := whole.SavePartitioned(dir, peptides, sets)
		if err != nil {
			t.Fatalf("sets=%d: %v", sets, err)
		}
		if cm.Sets != sets || cm.TotalShards != 5 || len(cm.SetDirs) != sets {
			t.Fatalf("sets=%d: cluster manifest shape %+v", sets, cm)
		}
		if cm.ClusterDigest != ComposeClusterDigest(cm.SetDigests) {
			t.Fatalf("sets=%d: cluster digest does not compose", sets)
		}
		reread, err := ReadClusterManifest(dir)
		if err != nil {
			t.Fatalf("sets=%d: reread cluster manifest: %v", sets, err)
		}
		if !reflect.DeepEqual(reread, cm) {
			t.Fatalf("sets=%d: cluster manifest round-trip differs", sets)
		}

		parts := make([][][]PSM, sets)
		totalShards := 0
		for i := 0; i < sets; i++ {
			slice, peps, err := OpenSession(filepath.Join(dir, cm.SetDirs[i]))
			if err != nil {
				t.Fatalf("sets=%d: open set %d: %v", sets, i, err)
			}
			if !reflect.DeepEqual(peps, peptides) {
				t.Fatalf("sets=%d: set %d peptide list is not the global list", sets, i)
			}
			info := slice.ShardSet()
			if info == nil || info.Set != i || info.Sets != sets || info.TotalShards != 5 {
				t.Fatalf("sets=%d: set %d shard-set info %+v", sets, i, info)
			}
			if len(info.ShardIDs) != slice.NumShards() {
				t.Fatalf("sets=%d: set %d ids/shards mismatch", sets, i)
			}
			totalShards += slice.NumShards()
			if slice.Digest() != cm.SetDigests[i] {
				t.Fatalf("sets=%d: set %d digest %s, cluster manifest says %s",
					sets, i, slice.Digest(), cm.SetDigests[i])
			}
			res, err := slice.Search(ctx, queries)
			if err != nil {
				t.Fatalf("sets=%d: search set %d: %v", sets, i, err)
			}
			parts[i] = res.PSMs
			slice.Close()
		}
		if totalShards != 5 {
			t.Fatalf("sets=%d: sets hold %d shards, want 5", sets, totalShards)
		}
		requireIdenticalPSMs(t, "merged", mergeSetPSMs(parts, cfg.TopK), want.PSMs)
	}
}

// TestSavePartitionedRejectsBadShapes covers the partitioning error
// paths: out-of-range set counts, re-partitioning a slice, and the
// cluster-directory hint from OpenSession.
func TestSavePartitionedRejectsBadShapes(t *testing.T) {
	peptides, _, _ := testDataset(t, 6, 2, 0)
	cfg := SessionConfig{Config: lightConfig(), Shards: 3}
	sess, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	dir := filepath.Join(t.TempDir(), "cluster")
	for _, bad := range []int{0, -1, 4} {
		if _, err := sess.SavePartitioned(dir, peptides, bad); err == nil {
			t.Fatalf("sets=%d: expected an error", bad)
		}
	}
	cm, err := sess.SavePartitioned(dir, peptides, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Opening the cluster directory itself must point at the set layout.
	if _, _, err := OpenSession(dir); err == nil || !strings.Contains(err.Error(), "partitioned cluster") {
		t.Fatalf("opening the cluster dir: %v", err)
	}

	// A slice session cannot be re-partitioned, but saves itself whole
	// with its shard-set identity intact.
	slice, _, err := OpenSession(filepath.Join(dir, cm.SetDirs[1]))
	if err != nil {
		t.Fatal(err)
	}
	defer slice.Close()
	if _, err := slice.SavePartitioned(t.TempDir(), peptides, 1); err == nil {
		t.Fatal("re-partitioning a slice: expected an error")
	}
	resaved := filepath.Join(t.TempDir(), "set")
	if err := slice.Save(resaved, peptides); err != nil {
		t.Fatal(err)
	}
	again, _, err := OpenSession(resaved)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if !reflect.DeepEqual(again.ShardSet(), slice.ShardSet()) {
		t.Fatalf("resaved slice lost its shard-set identity: %+v vs %+v", again.ShardSet(), slice.ShardSet())
	}
}
