package engine

import (
	"testing"

	"lbe/internal/core"
)

// TestEmptyQueries: a run with no queries must still build, partition and
// return empty results with valid stats (the Fig. 5 memory experiment
// relies on this).
func TestEmptyQueries(t *testing.T) {
	peptides, _, _ := testDataset(t, 4, 1, 0)
	cfg := lightConfig()
	res, err := RunInProcess(3, peptides, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PSMs) != 0 {
		t.Errorf("PSMs = %d", len(res.PSMs))
	}
	if len(res.Stats) != 3 {
		t.Fatalf("stats = %d", len(res.Stats))
	}
	for _, s := range res.Stats {
		if s.IndexBytes <= 0 || s.Peptides == 0 {
			t.Errorf("rank %d stats: %+v", s.Rank, s)
		}
		if s.Work.IonHits != 0 {
			t.Errorf("rank %d did work with no queries", s.Rank)
		}
	}
}

// TestEmptyDatabase: searching an empty peptide database yields empty
// PSMs for every query.
func TestEmptyDatabase(t *testing.T) {
	_, queries, _ := testDataset(t, 4, 1, 5)
	cfg := lightConfig()
	res, err := RunInProcess(2, nil, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for q, psms := range res.PSMs {
		if len(psms) != 0 {
			t.Errorf("query %d matched against empty database", q)
		}
	}
}

// TestInvalidConfigFailsAllPolicies: a broken grouping config must fail
// the run, not hang the cluster.
func TestInvalidConfigFails(t *testing.T) {
	peptides, queries, _ := testDataset(t, 4, 1, 3)
	cfg := lightConfig()
	cfg.Group = core.GroupConfig{GroupSize: 0}
	if _, err := RunInProcess(3, peptides, queries, cfg); err == nil {
		t.Error("invalid grouping config must fail")
	}
	cfg = lightConfig()
	cfg.Params.Resolution = -1
	if _, err := RunInProcess(3, peptides, queries, cfg); err == nil {
		t.Error("invalid index params must fail")
	}
	cfg = lightConfig()
	cfg.Policy = core.Policy(99)
	if _, err := RunInProcess(3, peptides, queries, cfg); err == nil {
		t.Error("unknown policy must fail")
	}
}

// TestSerialEmptyInputs covers the baseline's edge cases.
func TestSerialEmptyInputs(t *testing.T) {
	cfg := lightConfig()
	res, err := RunSerial(nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PSMs) != 0 || res.CandidatePSMs() != 0 {
		t.Errorf("empty serial run: %+v", res)
	}
}

// TestRawOrderStillCorrect: the no-grouping ablation path must preserve
// result correctness.
func TestRawOrderStillCorrect(t *testing.T) {
	peptides, queries, _ := testDataset(t, 5, 1, 15)
	cfg := lightConfig()
	serial, err := RunSerial(peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RawOrder = true
	res, err := RunInProcess(3, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := psmSet(serial.PSMs), psmSet(res.PSMs)
	if len(a) != len(b) {
		t.Fatalf("raw order changed results: %d vs %d", len(b), len(a))
	}
	for k, n := range a {
		if b[k] != n {
			t.Fatalf("raw order changed PSM %s: %d vs %d", k, b[k], n)
		}
	}
}
