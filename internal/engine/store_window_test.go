package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lbe/internal/core"
	"lbe/internal/mass"
	"lbe/internal/slm"
)

// TestWindowedSearchMatchesFullScan is the engine-level equivalence gate
// for the precursor-windowed kernel: across policies × shard counts ×
// tolerances (narrow absolute, ppm, wider than the mass range, and fully
// open) a session's PSMs must be byte-identical with windowing forced off.
func TestWindowedSearchMatchesFullScan(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 40)
	ctx := context.Background()
	for _, tol := range []mass.Tolerance{mass.Da(0.5), mass.Ppm(30), mass.Da(1e7), mass.Open()} {
		for _, policy := range []core.Policy{core.Chunk, core.RandomWithinGroups} {
			for _, shards := range []int{1, 3} {
				label := fmt.Sprintf("tol=%+v/%v/shards=%d", tol, policy, shards)
				cfg := SessionConfig{Config: lightConfig(), Shards: shards}
				cfg.Params.PrecursorTol = tol
				cfg.Policy = policy
				cfg.Seed = 11
				sess, err := NewSession(peptides, cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				windowed, err := sess.Search(ctx, queries)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				sess.SetFullScan(true)
				full, err := sess.Search(ctx, queries)
				if err != nil {
					t.Fatalf("%s: full scan: %v", label, err)
				}
				requireIdenticalPSMs(t, label, full.PSMs, windowed.PSMs)
				if full.CandidatePSMs() != windowed.CandidatePSMs() {
					t.Fatalf("%s: scored %d windowed vs %d full", label,
						windowed.CandidatePSMs(), full.CandidatePSMs())
				}
				sess.Close()
			}
		}
	}
}

// rewriteStoreAsV2 re-encodes every shard file of a saved store in the
// legacy v2 SLMX format and re-anchors the manifest's size and CRC
// records, producing the store a pre-v3 build would have written.
func rewriteStoreAsV2(t *testing.T, dir string) {
	t.Helper()
	doc, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man map[string]any
	if err := json.Unmarshal(doc, &man); err != nil {
		t.Fatal(err)
	}
	shards := man["shards"].([]any)
	for _, e := range shards {
		rec := e.(map[string]any)
		path := filepath.Join(dir, rec["name"].(string))
		ix, err := slm.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ix.WriteToVersion(f, 2); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rec["size"] = len(data)
		rec["crc32"] = crc32.ChecksumIEEE(data)
	}
	out, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreOpenV2Migration: a store whose shards are legacy v2 files must
// still open — mapped opens fall back to the heap (v2 postings must be
// rewritten into precursor order, which a read-only mapping cannot back)
// — and serve PSMs identical to the v3 store it was derived from.
func TestStoreOpenV2Migration(t *testing.T) {
	peptides, queries, _ := testDataset(t, 6, 2, 25)
	cfg := SessionConfig{Config: lightConfig(), Shards: 3}
	cfg.Params.PrecursorTol = mass.Da(0.5)
	live, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	ctx := context.Background()
	want, err := live.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := live.Save(dir, peptides); err != nil {
		t.Fatal(err)
	}
	rewriteStoreAsV2(t, dir)

	// Mapped open: every shard must fall back to the heap, not fail.
	sess, gotPeps, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if !reflect.DeepEqual(gotPeps, peptides) {
		t.Fatal("reloaded peptide list differs")
	}
	if n := sess.MappedShards(); n != 0 {
		t.Fatalf("%d shards report mapped backing for a v2 store", n)
	}
	got, err := sess.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalPSMs(t, "v2 store (mapped open)", got.PSMs, want.PSMs)

	// Heap open exercises the streaming v2 decoder against the same files.
	heap, _, err := OpenSessionOptions(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer heap.Close()
	got2, err := heap.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalPSMs(t, "v2 store (heap open)", got2.PSMs, want.PSMs)

	// Re-encoding the migrated session's shards with the current writer
	// (what `lbe-index -out` does) must yield a store that opens mapped.
	out := filepath.Join(t.TempDir(), "reencoded")
	if err := sess.Save(out, peptides); err != nil {
		t.Fatal(err)
	}
	re, _, err := OpenSession(out)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := re.MappedShards(); n != re.NumShards() {
		t.Fatalf("re-encoded store mapped %d of %d shards", n, re.NumShards())
	}
	got3, err := re.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalPSMs(t, "re-encoded store", got3.PSMs, want.PSMs)
}
