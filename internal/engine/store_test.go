package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lbe/internal/core"
)

// requireIdenticalPSMs asserts exact equality, Origin included: a session
// reloaded from a store has the very same sharding as the one that saved
// it, so even provenance must match.
func requireIdenticalPSMs(t *testing.T, label string, got, want [][]PSM) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d queries, want %d", label, len(got), len(want))
	}
	for q := range want {
		if !reflect.DeepEqual(got[q], want[q]) {
			t.Fatalf("%s query %d:\n got %+v\nwant %+v", label, q, got[q], want[q])
		}
	}
}

// TestStoreRoundTripMatchesLiveSession is the tentpole equivalence
// guarantee of the persistent store: for every policy × shard count, a
// session opened from a store returns PSMs identical to the session that
// saved it — same peptide list, same shapes, same provenance.
func TestStoreRoundTripMatchesLiveSession(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 40)
	base := lightConfig()
	ctx := context.Background()

	for _, policy := range []core.Policy{core.Chunk, core.Cyclic, core.Random, core.RandomWithinGroups} {
		for _, shards := range []int{1, 3} {
			label := fmt.Sprintf("%v/shards=%d", policy, shards)
			cfg := SessionConfig{Config: base, Shards: shards}
			cfg.Policy = policy
			cfg.Seed = 7
			live, err := NewSession(peptides, cfg)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			want, err := live.Search(ctx, queries)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}

			dir := filepath.Join(t.TempDir(), "store")
			if err := live.Save(dir, peptides); err != nil {
				t.Fatalf("%s: save: %v", label, err)
			}
			loaded, gotPeps, err := OpenSession(dir)
			if err != nil {
				t.Fatalf("%s: open: %v", label, err)
			}
			if !reflect.DeepEqual(gotPeps, peptides) {
				t.Fatalf("%s: reloaded peptide list differs", label)
			}
			if loaded.NumShards() != live.NumShards() || loaded.Groups() != live.Groups() {
				t.Fatalf("%s: shape: %d/%d shards, %d/%d groups", label,
					loaded.NumShards(), live.NumShards(), loaded.Groups(), live.Groups())
			}
			if loaded.IndexBytes() != live.IndexBytes() || loaded.MappingBytes() != live.MappingBytes() {
				t.Fatalf("%s: memory accounting differs after reload", label)
			}
			got, err := loaded.Search(ctx, queries)
			if err != nil {
				t.Fatalf("%s: search on loaded session: %v", label, err)
			}
			requireIdenticalPSMs(t, label, got.PSMs, want.PSMs)
			if got.CandidatePSMs() != want.CandidatePSMs() {
				t.Fatalf("%s: scored %d, live %d", label, got.CandidatePSMs(), want.CandidatePSMs())
			}
			loaded.Close()
			live.Close()
		}
	}
}

// storeFixture builds one session, saves it, and hands the store
// directory to a corruption scenario.
func storeFixture(t *testing.T, shards int, withPeptides bool) (dir string, peptides []string) {
	t.Helper()
	peptides, _, _ = testDataset(t, 6, 2, 0)
	cfg := SessionConfig{Config: lightConfig(), Shards: shards}
	sess, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	dir = filepath.Join(t.TempDir(), "store")
	saved := peptides
	if !withPeptides {
		saved = nil
	}
	if err := sess.Save(dir, saved); err != nil {
		t.Fatal(err)
	}
	return dir, peptides
}

func TestStoreWithoutPeptides(t *testing.T) {
	dir, _ := storeFixture(t, 2, false)
	sess, peps, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if peps != nil {
		t.Fatalf("store saved without peptides returned %d peptides", len(peps))
	}
	if sess.NumShards() != 2 {
		t.Fatalf("loaded %d shards, want 2", sess.NumShards())
	}
}

// editManifest applies fn to the parsed manifest JSON and writes it back.
func editManifest(t *testing.T, dir string, fn func(map[string]any)) {
	t.Helper()
	path := filepath.Join(dir, "manifest.json")
	doc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(doc, &m); err != nil {
		t.Fatal(err)
	}
	fn(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRejectsCorruptStores drives the corruption suite. A heap open
// (MapStore false) must fail at OpenSessionOptions for every tampered
// store; a mapped open defers shard-content checksums to the first
// query, so it must fail at open or at the first Search — never serve a
// result from a corrupt store.
func TestOpenRejectsCorruptStores(t *testing.T) {
	cases := []struct {
		name    string
		tamper  func(t *testing.T, dir string)
		message string
	}{
		{"bit-flipped shard", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "shard-0001.slmx")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "a flipped bit in a shard file must fail the checksum"},
		{"truncated shard", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "shard-0000.slmx")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}, "a truncated shard file must fail"},
		{"version bump", func(t *testing.T, dir string) {
			editManifest(t, dir, func(m map[string]any) { m["format_version"] = 2 })
		}, "a future manifest version must be refused"},
		{"shard count mismatch", func(t *testing.T, dir string) {
			editManifest(t, dir, func(m map[string]any) {
				m["config"].(map[string]any)["Shards"] = 3
			})
		}, "a manifest/shard-count mismatch must be refused"},
		{"missing shard file", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, "shard-0001.slmx")); err != nil {
				t.Fatal(err)
			}
		}, "a missing shard file must fail"},
		{"swapped shard files", func(t *testing.T, dir string) {
			a := filepath.Join(dir, "shard-0000.slmx")
			b := filepath.Join(dir, "shard-0001.slmx")
			tmp := filepath.Join(dir, "tmp.slmx")
			for _, mv := range [][2]string{{a, tmp}, {b, a}, {tmp, b}} {
				if err := os.Rename(mv[0], mv[1]); err != nil {
					t.Fatal(err)
				}
			}
		}, "shard files swapped between slots must fail the manifest CRC"},
		{"tampered manifest params", func(t *testing.T, dir string) {
			editManifest(t, dir, func(m map[string]any) {
				m["config"].(map[string]any)["Params"].(map[string]any)["MaxQueryPeaks"] = 7
			})
		}, "manifest params disagreeing with the shard-embedded params must be refused"},
		{"missing manifest", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, "manifest.json")); err != nil {
				t.Fatal(err)
			}
		}, "a store without a manifest must be refused"},
		{"traversal file name", func(t *testing.T, dir string) {
			editManifest(t, dir, func(m map[string]any) {
				m["mapping"].(map[string]any)["name"] = "../mapping.lbmt"
			})
		}, "a manifest name escaping the store directory must be refused"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, _ := storeFixture(t, 2, true)
			tc.tamper(t, dir)
			if sess, _, err := OpenSessionOptions(dir, OpenOptions{MapStore: false}); err == nil {
				sess.Close()
				t.Error(tc.message)
			}
			sess, _, err := OpenSession(dir)
			if err == nil {
				_, err = sess.Search(context.Background(), nil)
				sess.Close()
			}
			if err == nil {
				t.Errorf("mapped open: %s", tc.message)
			}
		})
	}
}

func TestTuneAdjustsRuntimeKnobs(t *testing.T) {
	dir, _ := storeFixture(t, 2, false)
	sess, _, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.Tune(3, 128)
	if cfg := sess.Config(); cfg.ThreadsPerRank != 3 || cfg.BatchSize != 128 {
		t.Fatalf("Tune did not apply: %+v", cfg)
	}
	sess.Tune(0, 0) // zero keeps the current values
	if cfg := sess.Config(); cfg.ThreadsPerRank != 3 || cfg.BatchSize != 128 {
		t.Fatalf("Tune(0,0) changed values: %+v", cfg)
	}
	sess.TuneScheduler(16, false)
	if cfg := sess.Config(); cfg.ChunkSize != 16 || cfg.Stealing {
		t.Fatalf("TuneScheduler did not apply: %+v", cfg)
	}
	sess.TuneScheduler(-1, true) // negative chunk keeps the current value
	if cfg := sess.Config(); cfg.ChunkSize != 16 || !cfg.Stealing {
		t.Fatalf("TuneScheduler(-1,true): %+v", cfg)
	}
}

// TestStoreRoundTripsSchedulerConfig: the manifest must persist the
// execution-layer knobs alongside the database-shape config.
func TestStoreRoundTripsSchedulerConfig(t *testing.T) {
	peptides, _, _ := testDataset(t, 4, 1, 0)
	cfg := SessionConfig{Config: lightConfig(), Shards: 2}
	cfg.ChunkSize = 9
	cfg.Stealing = true
	sess, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	dir := filepath.Join(t.TempDir(), "store")
	if err := sess.Save(dir, peptides); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if got := loaded.Config(); got.ChunkSize != 9 || !got.Stealing {
		t.Fatalf("scheduler config did not survive the store: %+v", got)
	}
}

// TestSessionDigestConsistency pins the digest contract the router's
// consistency gate is built on: replicas built from the same database
// with the same shape agree, replicas opened from the same store agree
// (with each other and with the saver), and changing the shape or the
// store changes the digest.
func TestSessionDigestConsistency(t *testing.T) {
	peptides, _, _ := testDataset(t, 6, 2, 0)
	cfg := SessionConfig{Config: lightConfig(), Shards: 2}

	a, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Digest() == "" {
		t.Fatal("fresh session has no digest")
	}
	b, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Digest() != b.Digest() {
		t.Fatalf("same database, same shape, different digests:\n%s\n%s", a.Digest(), b.Digest())
	}

	// Runtime knobs must not move the digest; shape knobs must.
	rcfg := cfg
	rcfg.ThreadsPerRank = 3
	rcfg.BatchSize = 17
	r, err := NewSession(peptides, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Digest() != a.Digest() {
		t.Fatal("runtime knobs changed the digest")
	}
	scfg := cfg
	scfg.Shards = 3
	s3, err := NewSession(peptides, scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Digest() == a.Digest() {
		t.Fatal("different shard count, same digest")
	}

	// Saving re-anchors the saver to the store manifest, and every open
	// of that store agrees with it.
	fresh := a.Digest()
	dir := filepath.Join(t.TempDir(), "store")
	if err := a.Save(dir, peptides); err != nil {
		t.Fatal(err)
	}
	if a.Digest() == fresh {
		t.Fatal("Save did not re-anchor the digest to the manifest")
	}
	o1, _, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer o1.Close()
	o2, _, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	if o1.Digest() != a.Digest() || o1.Digest() != o2.Digest() {
		t.Fatalf("store digests disagree: saver %s, opens %s / %s", a.Digest(), o1.Digest(), o2.Digest())
	}

	// A second store of the same content is still a different manifest
	// (build timings differ), hence a different cluster contract.
	dir2 := filepath.Join(t.TempDir(), "store")
	if err := b.Save(dir2, peptides); err != nil {
		t.Fatal(err)
	}
	o3, _, err := OpenSession(dir2)
	if err != nil {
		t.Fatal(err)
	}
	defer o3.Close()
	if o3.Digest() == o1.Digest() {
		t.Fatal("distinct stores produced the same manifest digest")
	}
}
