package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"lbe/internal/core"
	"lbe/internal/sched"
	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// ErrStreamClosed is returned by Push after Close and by a redundant
// Close: the stream's input side is already sealed. It replaces the
// channel panics a misused stream used to risk.
var ErrStreamClosed = errors.New("engine: stream is closed")

// SessionConfig configures a Session: the engine knobs plus the number of
// in-process shards the database is partitioned into.
type SessionConfig struct {
	Config
	// Shards is the number of LBE partitions held in-process (the virtual
	// cluster size); 0 or negative means 1. Results are identical for
	// every shard count.
	Shards int
	// MapStore asks store-opening entry points to back shard indexes
	// with read-only memory mappings of the SLMX files instead of heap
	// copies (see OpenOptions.MapStore). It is a runtime preference, not
	// part of the store's identity: the json:"-" tag keeps it out of
	// manifests, so digests are invariant to how a store is opened.
	MapStore bool `json:"-"`
}

// DefaultSessionConfig returns a traffic-serving setup: the paper's cyclic
// policy, one shard, one search thread per available core, and 256-query
// pipeline batches.
func DefaultSessionConfig() SessionConfig {
	cfg := DefaultConfig()
	cfg.ThreadsPerRank = runtime.GOMAXPROCS(0)
	cfg.BatchSize = 256
	return SessionConfig{Config: cfg, Shards: 1}
}

// SchedulerStats is the session-lifetime view of the work-stealing
// execution layer: per-worker aggregates plus steal and chunk counters.
// The spread of Work across Workers is the intra-node balance figure the
// scheduler exists to flatten; Steals/Stolen say how much rebalancing it
// took to get there.
type SchedulerStats struct {
	Workers   []sched.WorkerStats // lifetime per-worker aggregates
	Batches   int64               // scheduled pipeline batches
	Chunks    int64               // chunks executed
	Steals    int64               // steal-half operations
	Stolen    int64               // chunks acquired by stealing
	ChunkSize int                 // last effective granularity (auto-tuned when cfg.ChunkSize is 0)
	Stealing  bool                // current scheduling mode
}

// Session owns a built search engine: the LBE grouping, the policy
// partition, one SLM index per shard, and the master mapping table. It is
// constructed once with NewSession and then serves any number of query
// batches — through Search for whole runs or Stream for continuous
// streaming — without rebuilding anything.
//
// A Session is safe for concurrent use: multiple Streams and Searches may
// run at once over the same immutable indexes.
type Session struct {
	cfg    Config
	shards []*slm.Index
	table  core.MappingTable

	groups        int
	groupingNanos int64
	partitionNs   int64
	build         []RankStats   // per-shard construction stats (zero query load)
	shardSet      *ShardSetInfo // non-nil when this session holds one slice of a partitioned store

	// storeVerify holds the deferred content verification of mapped shard
	// opens (section CRCs + manifest whole-file CRCs); verifyOnce runs it
	// before the first query and latches the outcome into verifyErr.
	storeVerify []func() error
	verifyOnce  sync.Once
	verifyErr   error

	mu       sync.Mutex
	pool     *sched.Pool // query-time execution layer; swapped by Tune*
	digest   string      // store-consistency digest; see Digest
	closed   bool
	searched int64          // lifetime queries served
	batches  int64          // lifetime merged batches emitted
	load     []RankStats    // lifetime per-shard load (build + accumulated query work)
	sched    SchedulerStats // lifetime scheduler telemetry
}

// NewSession groups and partitions the peptide database under cfg and
// builds every shard's partial index (shards build concurrently, each with
// cfg.BuildWorkers construction workers).
func NewSession(peptides []string, cfg SessionConfig) (*Session, error) {
	p := cfg.Shards
	if p < 1 {
		p = 1
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("engine: session: %w", err)
	}
	prep, err := prepare(peptides, cfg.Config, p)
	if err != nil {
		return nil, fmt.Errorf("engine: session: %w", err)
	}

	s := &Session{
		cfg:           cfg.Config,
		shards:        make([]*slm.Index, p),
		groups:        prep.grouping.NumGroups(),
		groupingNanos: prep.groupNs,
		partitionNs:   prep.partNs,
		build:         make([]RankStats, p),
	}
	// Shards build concurrently, so split the construction worker budget
	// across them rather than multiplying it (the index is byte-identical
	// for any worker count).
	buildWorkers := divideBuildWorkers(cfg.BuildWorkers, p)

	var wg sync.WaitGroup
	errs := make([]error, p)
	for m := 0; m < p; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			local := prep.localPeptides(peptides, m)
			buildStart := time.Now()
			ix, err := slm.BuildWorkers(local, cfg.Params, buildWorkers)
			if err != nil {
				errs[m] = fmt.Errorf("engine: session shard %d build: %w", m, err)
				return
			}
			s.shards[m] = ix
			s.build[m] = rankStats(m, local, ix, time.Since(buildStart).Nanoseconds(), 0, slm.Work{})
		}(m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s.table = core.BuildMappingTable(prep.grouping, prep.partition)
	s.load = append([]RankStats(nil), s.build...)
	s.pool = s.cfg.newSessionPool()
	if s.digest, err = canonicalDigest(peptides, cfg.Config, p); err != nil {
		return nil, fmt.Errorf("engine: session: %w", err)
	}
	return s, nil
}

// canonicalDigest fingerprints a freshly built session: a hash over the
// result-shaping configuration (search params, grouping, policy, seed,
// TopK, shard count — the runtime knobs that only change the schedule
// are deliberately excluded) and the full peptide list. Two replicas
// that build from the same database with the same shape flags agree;
// replicas warm-started from a store agree through the manifest hash
// instead (see OpenSession). The router's consistency gate compares
// these digests before mixing replicas.
func canonicalDigest(peptides []string, cfg Config, shards int) (string, error) {
	shape := struct {
		Params   slm.Params       `json:"params"`
		Group    core.GroupConfig `json:"group"`
		Policy   core.Policy      `json:"policy"`
		Seed     int64            `json:"seed"`
		TopK     int              `json:"topk"`
		RawOrder bool             `json:"raw_order"`
		Shards   int              `json:"shards"`
	}{cfg.Params, cfg.Group, cfg.Policy, cfg.Seed, cfg.TopK, cfg.RawOrder, shards}
	doc, err := json.Marshal(shape)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(doc)
	h.Write([]byte{0})
	for _, p := range peptides {
		io.WriteString(h, p)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Digest returns the session's store-consistency digest: a stable
// fingerprint of the searched database and its result-shaping
// configuration. Sessions opened from the same store (or saved to one)
// share the store manifest's hash; freshly built sessions share a
// canonical hash of their shape config and peptide list. lbe-serve
// exposes it on /healthz and /stats, and lbe-router refuses to route
// across replicas whose digests differ.
func (s *Session) Digest() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.digest
}

// setDigest replaces the digest after Save re-anchors the session's
// identity to the store manifest it just wrote.
func (s *Session) setDigest(d string) {
	s.mu.Lock()
	s.digest = d
	s.mu.Unlock()
}

// newSessionPool builds a Session's scheduler pool. Unlike the
// distributed rank pipeline — where 0 threads means serial because the
// per-machine parallelism comes from the ranks themselves — a Session is
// the whole process's engine, so an unset ThreadsPerRank defaults to one
// worker per core (the pre-scheduler Session ran one goroutine per shard
// unconditionally; defaulting preserves that parallelism for library
// callers that never touch the knob).
func (cfg Config) newSessionPool() *sched.Pool {
	if cfg.ThreadsPerRank <= 0 {
		cfg.ThreadsPerRank = runtime.GOMAXPROCS(0)
	}
	return cfg.newPool()
}

// NumShards returns the number of in-process partitions.
func (s *Session) NumShards() int { return len(s.build) }

// MappedShards returns how many of the session's shard indexes are
// backed by zero-copy memory mappings (see OpenOptions.MapStore): 0 for
// freshly built or heap-loaded sessions, NumShards for a fully mapped
// store open, in between when some shards fell back.
func (s *Session) MappedShards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ix := range s.shards {
		if ix.Mapped() {
			n++
		}
	}
	return n
}

// SetFullScan forces (or re-enables windowing on) every shard's phase-1
// postings scan. The windowed and full scans are byte-identical by
// construction; the toggle exists so benchmarks and equivalence gates can
// measure the full-scan cost on the same session. Not safe to flip while
// queries are in flight.
func (s *Session) SetFullScan(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ix := range s.shards {
		ix.SetFullScan(v)
	}
}

// ShardSetInfo identifies the slice of a partitioned store a session
// holds: which shard-set it is, the cluster shape, and the global id of
// each local shard (see Session.SavePartitioned).
type ShardSetInfo struct {
	Set         int   // this set's index in [0, Sets)
	Sets        int   // shard-sets the cluster was partitioned into
	TotalShards int   // shards across the whole cluster
	ShardIDs    []int // global shard id of each local shard, in local order
}

// ShardSet returns the shard-set slice this session holds, or nil for a
// whole-store session. The returned struct is a copy.
func (s *Session) ShardSet() *ShardSetInfo {
	if s.shardSet == nil {
		return nil
	}
	out := *s.shardSet
	out.ShardIDs = append([]int(nil), s.shardSet.ShardIDs...)
	return &out
}

// globalShardID maps a local shard index to its cluster-wide id: the
// identity for a whole-store session, the saved shard_ids entry for a
// shard-set slice. Merged PSMs carry it as Origin, so a slice session
// reports the same shard identities the whole-store session would.
func (s *Session) globalShardID(m int) int {
	if s.shardSet == nil {
		return m
	}
	return s.shardSet.ShardIDs[m]
}

// Groups returns the number of LBE groups formed over the database.
func (s *Session) Groups() int { return s.groups }

// MappingBytes returns the master mapping table footprint.
func (s *Session) MappingBytes() int { return s.table.MemoryBytes() }

// IndexBytes returns the total resident size of the shard indexes.
func (s *Session) IndexBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ix := range s.shards {
		n += ix.MemoryBytes()
	}
	return n
}

// Searched returns the lifetime number of queries this session served.
func (s *Session) Searched() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.searched
}

// Batches returns the lifetime number of merged pipeline batches the
// session emitted across every Search and Stream. A serving layer that
// coalesces requests can read it to verify how much batching it achieved.
func (s *Session) Batches() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches
}

// Config returns the engine configuration the session was built with.
func (s *Session) Config() Config { return s.cfg }

// Stats returns the lifetime per-shard load: construction stats plus the
// query work accumulated over every Search and Stream so far.
func (s *Session) Stats() []RankStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RankStats(nil), s.load...)
}

// SchedulerStats returns the lifetime scheduler telemetry: per-worker
// work/wall-time aggregates plus steal and chunk counters across every
// Search and Stream the session served.
func (s *Session) SchedulerStats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.sched
	out.Workers = append([]sched.WorkerStats(nil), s.sched.Workers...)
	out.Stealing = s.cfg.Stealing
	return out
}

// Close releases the shard indexes. Streams opened later fail; streams
// already open keep their index references and drain normally. For a
// mapped session this only drops the references — the underlying file
// mappings are released when the last index reference is collected
// (never eagerly, since a draining stream may still be searching them).
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.shards = nil
}

// record accumulates one merged batch into the lifetime load accounting:
// per-shard work/time plus the scheduler's per-worker telemetry.
func (s *Session) record(nq int, sr *sched.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.searched += int64(nq)
	s.batches++
	for m := range sr.Shards {
		s.load[m].Work.Add(sr.Shards[m].Work)
		s.load[m].QueryNanos += sr.Shards[m].Nanos
	}
	s.sched.Batches++
	s.sched.ChunkSize = sr.ChunkSize
	for len(s.sched.Workers) < len(sr.Workers) {
		s.sched.Workers = append(s.sched.Workers, sched.WorkerStats{Worker: len(s.sched.Workers)})
	}
	for t, w := range sr.Workers {
		s.sched.Workers[t].Add(w)
		s.sched.Chunks += int64(w.Chunks)
		s.sched.Steals += int64(w.Steals)
		s.sched.Stolen += int64(w.Stolen)
	}
}

// BatchResult is one merged batch emitted by a Stream, in push order.
type BatchResult struct {
	Seq    int     // 0-based batch sequence number
	Offset int     // global index of the batch's first query
	PSMs   [][]PSM // per query in the batch, best-first, TopK applied

	// ShardWork and ShardNanos give the deterministic work and search
	// wall time each shard spent on this batch.
	ShardWork  []slm.Work
	ShardNanos []int64
}

// Work returns the batch's total deterministic work across shards.
func (br BatchResult) Work() slm.Work {
	var w slm.Work
	for _, sw := range br.ShardWork {
		w.Add(sw)
	}
	return w
}

// shardSearched is one batch searched on every shard, pre-merge.
type shardSearched struct {
	batch
	sched *sched.Result // [shard][query in batch] matches + telemetry
}

// Stream is a continuous query pipeline over a Session: batches pushed
// with Push flow through preprocess → per-shard search → merge stages and
// come out of Results in push order, so several batches are in flight at
// once. One goroutine pushes; any number may consume Results.
type Stream struct {
	session *Session
	shards  []*slm.Index // snapshot, so Session.Close cannot race a live stream
	pool    *sched.Pool  // snapshot, so Session.Tune* cannot race a live stream
	ctx     context.Context
	cancel  context.CancelFunc
	in      chan batch
	out     chan BatchResult

	seq    int
	pushed int

	// inMu serializes the input side (Push, Close) so a concurrent
	// Push/Close cannot panic on the closed channel; closed is read and
	// written only under it.
	inMu   sync.Mutex
	closed bool

	mu  sync.Mutex
	err error
}

// verifyStore runs the deferred content verification of a mapped store
// open exactly once — every lazily-opened shard in parallel — and
// returns the same outcome on later calls. Sessions built in-process or
// heap-loaded verified everything eagerly and return nil immediately.
func (s *Session) verifyStore() error {
	s.verifyOnce.Do(func() {
		if len(s.storeVerify) == 0 {
			return
		}
		errs := make([]error, len(s.storeVerify))
		var wg sync.WaitGroup
		for i, fn := range s.storeVerify {
			wg.Add(1)
			go func(i int, fn func() error) {
				defer wg.Done()
				errs[i] = fn()
			}(i, fn)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				s.verifyErr = err
				return
			}
		}
	})
	return s.verifyErr
}

// Stream opens a streaming pipeline over the session. Cancel ctx to abort:
// every stage shuts down promptly and Err reports the cancellation.
//
// For a session warm-started with mapped shards, the first Stream (or
// Search) runs the store's deferred content verification and fails here
// if the store is corrupt — after that one check, streams open with no
// extra cost.
func (s *Session) Stream(ctx context.Context) (*Stream, error) {
	if err := s.verifyStore(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	closed := s.closed
	shards := s.shards
	pool := s.pool
	s.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("engine: session is closed")
	}
	ctx, cancel := context.WithCancel(ctx)
	st := &Stream{
		session: s,
		shards:  shards,
		pool:    pool,
		ctx:     ctx,
		cancel:  cancel,
		in:      make(chan batch, pipeDepth),
		out:     make(chan BatchResult, pipeDepth),
	}
	pp := preprocessStage(ctx, st.in, s.cfg.Params.MaxQueryPeaks)
	sr := st.searchShardsStage(pp)
	go st.mergeLoop(sr)
	return st, nil
}

// searchShardsStage runs each batch through the session's scheduler pool:
// every (shard, query-chunk) task lands on one shared set of
// ThreadsPerRank workers, which drain their home shard's deque and steal
// from the fullest one when it runs dry. Results are invariant to the
// schedule; only the telemetry records who did what.
func (st *Stream) searchShardsStage(in <-chan batch) <-chan shardSearched {
	out := make(chan shardSearched, pipeDepth)
	go func() {
		defer close(out)
		for {
			b, ok := recv(st.ctx, in)
			if !ok {
				return
			}
			res, err := st.pool.Run(st.ctx, st.shards, b.qs)
			if err != nil {
				return // cancelled; mergeLoop reports ctx.Err()
			}
			if !send(st.ctx, out, shardSearched{batch: b, sched: res}) {
				return
			}
		}
	}()
	return out
}

// mergeLoop is the stream's final stage: it maps every shard-local match
// to its global peptide through the mapping table, sorts, applies TopK,
// and emits the merged batch.
func (st *Stream) mergeLoop(in <-chan shardSearched) {
	// Release the stream's derived context once the pipeline finishes, so
	// long-lived parents don't accumulate one cancelCtx per stream served.
	defer st.cancel()
	defer close(st.out)
	s := st.session
	for {
		ss, ok := recv(st.ctx, in)
		if !ok {
			if err := st.ctx.Err(); err != nil {
				st.fail(err)
			}
			return
		}
		psms := make([][]PSM, len(ss.qs))
		for q := range ss.qs {
			var merged []PSM
			for m := range ss.sched.Matches {
				for _, match := range ss.sched.Matches[m][q] {
					gidx, err := s.table.Lookup(m, match.Peptide)
					if err != nil {
						st.fail(fmt.Errorf("engine: mapping shard %d: %w", m, err))
						return
					}
					merged = append(merged, PSM{
						Peptide:   gidx,
						Shared:    match.Shared,
						Score:     match.Score,
						Precursor: match.Precursor,
						Origin:    s.globalShardID(m),
					})
				}
			}
			sortPSMs(merged)
			if s.cfg.TopK > 0 && len(merged) > s.cfg.TopK {
				merged = merged[:s.cfg.TopK]
			}
			psms[q] = merged
		}
		s.record(len(ss.qs), ss.sched)
		works := make([]slm.Work, len(ss.sched.Shards))
		nanos := make([]int64, len(ss.sched.Shards))
		for m, sh := range ss.sched.Shards {
			works[m] = sh.Work
			nanos[m] = sh.Nanos
		}
		br := BatchResult{
			Seq:        ss.seq,
			Offset:     ss.offset,
			PSMs:       psms,
			ShardWork:  works,
			ShardNanos: nanos,
		}
		if !send(st.ctx, st.out, br) {
			if err := st.ctx.Err(); err != nil {
				st.fail(err)
			}
			return
		}
	}
}

// fail records the stream's first error and tears the pipeline down.
func (st *Stream) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
	st.cancel()
}

// Push submits one batch of query spectra to the pipeline. It blocks only
// when the pipeline is full, and returns ErrStreamClosed after Close or
// the stream's error after cancellation. Pushes may race Close and Cancel
// safely; concurrent Pushes are serialized but their batch order is then
// unspecified, so a producer that needs deterministic offsets should keep
// pushing from one goroutine.
func (st *Stream) Push(qs []spectrum.Experimental) error {
	st.inMu.Lock()
	defer st.inMu.Unlock()
	if st.closed {
		return ErrStreamClosed
	}
	// Fail fast on an already-dead pipeline. This narrows — but cannot
	// close — the window where a cancellation lands mid-send and a batch
	// is accepted that no stage will consume; a producer needing exact
	// accounting must pair Pushes with received BatchResults.
	if st.ctx.Err() != nil {
		if err := st.Err(); err != nil {
			return err
		}
		return st.ctx.Err()
	}
	b := batch{seq: st.seq, offset: st.pushed, qs: qs}
	if !send(st.ctx, st.in, b) {
		if err := st.Err(); err != nil {
			return err
		}
		return st.ctx.Err()
	}
	st.seq++
	st.pushed += len(qs)
	return nil
}

// PushAll slices qs into size-query batches and pushes each one,
// returning the first push error (size < 1 pushes a single batch).
func (st *Stream) PushAll(qs []spectrum.Experimental, size int) error {
	if size < 1 {
		size = len(qs)
	}
	var err error
	forEachBatch(qs, size, func(_ int, b []spectrum.Experimental) bool {
		err = st.Push(b)
		return err == nil
	})
	return err
}

// Close seals the input end of the stream: in-flight batches drain and
// the Results channel closes after the last one. A second Close returns
// ErrStreamClosed and does nothing. Close may race Push and Cancel; a
// Push blocked on a full pipeline holds the input lock, so Close then
// waits for it (cancel the stream to unblock both).
func (st *Stream) Close() error {
	st.inMu.Lock()
	defer st.inMu.Unlock()
	if st.closed {
		return ErrStreamClosed
	}
	st.closed = true
	close(st.in)
	return nil
}

// Cancel aborts the stream immediately: every pipeline stage shuts down,
// Results closes, and Err reports the cancellation. A consumer that
// abandons Results before draining it must call Cancel (or cancel the
// stream's context) — Close alone only ends the input side, leaving
// in-flight batches blocked on the undrained output.
func (st *Stream) Cancel() { st.cancel() }

// Results returns the channel of merged batches, emitted in push order.
// It is closed after Close once every in-flight batch has drained, or on
// cancellation.
func (st *Stream) Results() <-chan BatchResult { return st.out }

// Err returns the first error the stream hit (nil while healthy). Check
// it after Results closes.
func (st *Stream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Search runs one whole query set through a fresh stream and assembles
// the master Result, exactly equal to RunSerial's reference output (up to
// PSM Origin, which records the owning shard). The session's indexes are
// reused as-is; nothing is rebuilt.
func (s *Session) Search(ctx context.Context, queries []spectrum.Experimental) (*Result, error) {
	start := time.Now()
	st, err := s.Stream(ctx)
	if err != nil {
		return nil, err
	}
	defer st.cancel()

	go func() {
		defer st.Close()
		st.PushAll(queries, s.cfg.effectiveBatch(len(queries)))
	}()

	res := &Result{
		PSMs:           make([][]PSM, len(queries)),
		Stats:          append([]RankStats(nil), s.build...),
		MappingBytes:   s.table.MemoryBytes(),
		GroupingNanos:  s.groupingNanos,
		PartitionNanos: s.partitionNs,
		Groups:         s.groups,
	}
	for br := range st.Results() {
		copy(res.PSMs[br.Offset:], br.PSMs)
		for m := range br.ShardWork {
			res.Stats[m].Work.Add(br.ShardWork[m])
			res.Stats[m].QueryNanos += br.ShardNanos[m]
		}
	}
	if err := st.Err(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.QueryNanos = time.Since(start).Nanoseconds()
	res.TotalNanos = time.Since(start).Nanoseconds()
	return res, nil
}
