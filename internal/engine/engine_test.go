package engine

import (
	"fmt"
	"math"
	"testing"

	"lbe/internal/core"
	"lbe/internal/digest"
	"lbe/internal/gen"
	"lbe/internal/mods"
	"lbe/internal/slm"
	"lbe/internal/spectrum"
	"lbe/internal/stats"
)

// testDataset builds a small but realistic corpus: synthetic proteome ->
// tryptic digest -> dedup, plus a skewed query run.
func testDataset(t testing.TB, families, homologs, nspectra int) ([]string, []spectrum.Experimental, []gen.GroundTruth) {
	t.Helper()
	recs, err := gen.Proteome(gen.ProteomeConfig{
		Seed: 21, NumFamilies: families, Homologs: homologs, MeanLen: 300, MutationRate: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]string, len(recs))
	for i, r := range recs {
		seqs[i] = r.Sequence
	}
	peps, err := digest.DefaultConfig().Proteome(seqs)
	if err != nil {
		t.Fatal(err)
	}
	peps = digest.Dedup(peps)
	peptides := digest.Sequences(peps)

	scfg := gen.DefaultSpectraConfig()
	scfg.NumSpectra = nspectra
	scfg.Seed = 22
	queries, truth, err := gen.Spectra(peptides, scfg)
	if err != nil {
		t.Fatal(err)
	}
	return peptides, queries, truth
}

// lightConfig keeps mod fan-out small so tests stay fast.
func lightConfig() Config {
	cfg := DefaultConfig()
	cfg.Params.Mods = mods.Config{Mods: mods.PaperSet(), MaxPerPep: 1}
	cfg.TopK = 0 // keep all matches for exact set comparison
	return cfg
}

// psmKey canonicalizes a PSM for cross-run comparison (Origin differs by
// construction; Row is partition-local).
func psmKey(p PSM) string {
	return fmt.Sprintf("%d|%d|%.6f|%.4f", p.Peptide, p.Shared, p.Score, p.Precursor)
}

func psmSet(psms [][]PSM) map[string]int {
	set := map[string]int{}
	for _, qs := range psms {
		for _, p := range qs {
			set[psmKey(p)]++
		}
	}
	return set
}

func TestDistributedMatchesSerial(t *testing.T) {
	peptides, queries, _ := testDataset(t, 10, 2, 60)
	cfg := lightConfig()

	serial, err := RunSerial(peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.PSMs) != len(queries) {
		t.Fatalf("serial PSMs for %d queries, want %d", len(serial.PSMs), len(queries))
	}
	want := psmSet(serial.PSMs)
	if len(want) == 0 {
		t.Fatal("serial run found no PSMs; dataset too small")
	}

	for _, policy := range []core.Policy{core.Chunk, core.Cyclic, core.Random, core.RandomWithinGroups} {
		for _, p := range []int{1, 2, 4, 7} {
			cfg := cfg
			cfg.Policy = policy
			cfg.Seed = 5
			res, err := RunInProcess(p, peptides, queries, cfg)
			if err != nil {
				t.Fatalf("%v p=%d: %v", policy, p, err)
			}
			got := psmSet(res.PSMs)
			if len(got) != len(want) {
				t.Fatalf("%v p=%d: %d distinct PSMs, serial %d", policy, p, len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("%v p=%d: PSM %s count %d, serial %d", policy, p, k, got[k], n)
				}
			}
			// Per-query counts must match too.
			for q := range queries {
				if len(res.PSMs[q]) != len(serial.PSMs[q]) {
					t.Fatalf("%v p=%d query %d: %d PSMs vs serial %d",
						policy, p, q, len(res.PSMs[q]), len(serial.PSMs[q]))
				}
			}
		}
	}
}

func TestTopKConsistency(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 30)
	cfg := lightConfig()
	cfg.TopK = 3

	serial, err := RunSerial(peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunInProcess(4, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for q := range queries {
		if len(res.PSMs[q]) > 3 {
			t.Fatalf("query %d has %d PSMs, topK=3", q, len(res.PSMs[q]))
		}
		if len(res.PSMs[q]) != len(serial.PSMs[q]) {
			t.Fatalf("query %d: %d vs serial %d", q, len(res.PSMs[q]), len(serial.PSMs[q]))
		}
		for i := range res.PSMs[q] {
			a, b := res.PSMs[q][i], serial.PSMs[q][i]
			if a.Peptide != b.Peptide || a.Shared != b.Shared || math.Abs(a.Score-b.Score) > 1e-9 {
				t.Fatalf("query %d psm %d: %+v vs serial %+v", q, i, a, b)
			}
		}
		// Scores descending.
		for i := 1; i < len(res.PSMs[q]); i++ {
			if res.PSMs[q][i].Score > res.PSMs[q][i-1].Score {
				t.Fatalf("query %d PSMs not sorted", q)
			}
		}
	}
}

func TestIdentificationRate(t *testing.T) {
	// The engine must actually identify peptides: for most queries the
	// ground-truth peptide should be among the top PSMs.
	peptides, queries, truth := testDataset(t, 10, 2, 80)
	cfg := lightConfig()
	cfg.TopK = 5
	res, err := RunInProcess(3, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	for q := range queries {
		for _, p := range res.PSMs[q] {
			if int(p.Peptide) == truth[q].Peptide {
				hit++
				break
			}
		}
	}
	rate := float64(hit) / float64(len(queries))
	if rate < 0.7 {
		t.Errorf("identification rate %.2f too low (%d/%d)", rate, hit, len(queries))
	}
}

func TestPartitionStatsShape(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 20)
	cfg := lightConfig()
	const p = 4
	res, err := RunInProcess(p, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != p {
		t.Fatalf("stats for %d ranks, want %d", len(res.Stats), p)
	}
	totalPeps := 0
	for r, s := range res.Stats {
		if s.Rank != r {
			t.Errorf("stats[%d].Rank = %d", r, s.Rank)
		}
		if s.Peptides == 0 || s.Rows < s.Peptides || s.IndexBytes <= 0 {
			t.Errorf("rank %d stats implausible: %+v", r, s)
		}
		totalPeps += s.Peptides
	}
	if totalPeps != len(peptides) {
		t.Errorf("partition sizes sum to %d, want %d", totalPeps, len(peptides))
	}
	if res.MappingBytes <= 0 || res.Groups <= 0 {
		t.Errorf("result metadata: %+v", res)
	}
	if res.CandidatePSMs() <= 0 {
		t.Error("no candidate PSMs counted")
	}
}

func TestCyclicBeatsChunkOnSkewedLoad(t *testing.T) {
	// The paper's central claim (Fig. 6): with a skewed query workload the
	// cyclic policy's load imbalance is far below chunk's. Work units are
	// deterministic, so this is a stable test, not a flaky timing assert.
	peptides, queries, _ := testDataset(t, 16, 3, 300)
	cfg := lightConfig()
	const p = 8

	li := map[core.Policy]float64{}
	for _, policy := range []core.Policy{core.Chunk, core.Cyclic} {
		cfg.Policy = policy
		res, err := RunInProcess(p, peptides, queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		li[policy] = stats.LoadImbalance(WorkUnits(res.Stats))
	}
	t.Logf("LI chunk=%.3f cyclic=%.3f", li[core.Chunk], li[core.Cyclic])
	if li[core.Cyclic] >= li[core.Chunk] {
		t.Errorf("cyclic LI %.3f not better than chunk %.3f", li[core.Cyclic], li[core.Chunk])
	}
	if li[core.Cyclic] > 0.25 {
		t.Errorf("cyclic LI %.3f above the paper's <=20%% band (+ margin)", li[core.Cyclic])
	}
}

func TestRunOverTCPMatchesInProcess(t *testing.T) {
	peptides, queries, _ := testDataset(t, 6, 2, 20)
	cfg := lightConfig()
	a, err := RunInProcess(3, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOverTCP(3, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := psmSet(a.PSMs), psmSet(b.PSMs)
	if len(sa) != len(sb) {
		t.Fatalf("PSM sets differ: %d vs %d", len(sa), len(sb))
	}
	for k, n := range sa {
		if sb[k] != n {
			t.Fatalf("PSM %s: %d vs %d", k, n, sb[k])
		}
	}
}

func TestSingleRankDistributedEqualsSerial(t *testing.T) {
	peptides, queries, _ := testDataset(t, 6, 1, 15)
	cfg := lightConfig()
	serial, err := RunSerial(peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RunInProcess(1, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With one rank the clustered order changes local peptide numbering,
	// but the mapped global PSM sets must still be identical.
	sa, sb := psmSet(serial.PSMs), psmSet(dist.PSMs)
	if len(sa) != len(sb) {
		t.Fatalf("%d vs %d PSMs", len(sa), len(sb))
	}
	for k, n := range sa {
		if sb[k] != n {
			t.Fatalf("PSM %s: %d vs %d", k, n, sb[k])
		}
	}
}

func TestWorkConservation(t *testing.T) {
	// Total scored candidates across ranks must equal the serial run's:
	// partitioning redistributes work but never changes its total.
	peptides, queries, _ := testDataset(t, 8, 2, 40)
	cfg := lightConfig()
	serial, err := RunSerial(peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []core.Policy{core.Chunk, core.Cyclic, core.Random} {
		cfg.Policy = policy
		res, err := RunInProcess(5, peptides, queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CandidatePSMs() != serial.CandidatePSMs() {
			t.Errorf("%v: scored %d, serial %d", policy, res.CandidatePSMs(), serial.CandidatePSMs())
		}
	}
}

func TestResultPSMsSortedDeterministically(t *testing.T) {
	peptides, queries, _ := testDataset(t, 6, 2, 20)
	cfg := lightConfig()
	a, err := RunInProcess(4, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunInProcess(4, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for q := range queries {
		if len(a.PSMs[q]) != len(b.PSMs[q]) {
			t.Fatalf("query %d: nondeterministic result count", q)
		}
		for i := range a.PSMs[q] {
			pa, pb := a.PSMs[q][i], b.PSMs[q][i]
			if pa.Peptide != pb.Peptide || pa.Score != pb.Score {
				t.Fatalf("query %d psm %d differs across runs", q, i)
			}
		}
	}
}

func TestQueryTimesAndWorkUnitsProjection(t *testing.T) {
	sts := []RankStats{
		{QueryNanos: 2e9, Work: slm.Work{IonHits: 100, Scored: 50}},
		{QueryNanos: 1e9, Work: slm.Work{IonHits: 10, Scored: 5}},
	}
	qt := QueryTimes(sts)
	if qt[0] != 2.0 || qt[1] != 1.0 {
		t.Errorf("QueryTimes = %v", qt)
	}
	wu := WorkUnits(sts)
	if wu[0] != 150 || wu[1] != 15 {
		t.Errorf("WorkUnits = %v", wu)
	}
}
