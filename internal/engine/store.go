package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"

	"lbe/internal/core"
	"lbe/internal/slm"
)

// Persistent session store: the paper's shared-memory design stores index
// chunks on disk when not in use (§II-B); a store generalizes that to the
// whole built engine, so a serving process can warm-start by loading
// index bytes instead of re-digesting and rebuilding the database — the
// amortization HiCOPS-style deployments rely on at tera-scale.
//
// On-disk layout of a store directory:
//
//	manifest.json    format version, the full SessionConfig (tolerances
//	                 in their string form, policy by name), grouping and
//	                 partition metadata (group count, preprocessing
//	                 nanos, per-shard build RankStats), the number of
//	                 peptides, and one {name, size, crc32} record per
//	                 companion file
//	mapping.lbmt     the master mapping table in the checksummed "LBMT"
//	                 binary format (internal/core/mapping_serialize.go)
//	peptides.txt     optional: the global peptide list, one sequence per
//	                 line, for sequence reporting at serve time
//	shard-%04d.slmx  one checksummed SLMX partial index per shard
//	                 (internal/slm/serialize.go)
//
// The manifest is written last, so a crashed Save leaves a directory
// that OpenSession refuses. Every companion file carries two layers of
// integrity: its own format checksum (SLMX/LBMT CRC) and the whole-file
// CRC recorded in the manifest, which also catches files swapped between
// stores of identical parameters. OpenSession loads shards in parallel
// and validates counts, CRCs, and the mapping/shard shape against each
// other before constructing the session.

const (
	storeFormatVersion = 1

	manifestFile = "manifest.json"
	mappingFile  = "mapping.lbmt"
	peptidesFile = "peptides.txt"
	shardPattern = "shard-%04d.slmx"

	// A partitioned cluster store (SavePartitioned) is a directory of
	// set-%02d subdirectories — each a complete store of its own — tied
	// together by cluster.json.
	clusterFile   = "cluster.json"
	setDirPattern = "set-%02d"

	// maxManifestBytes bounds how much of a (possibly corrupt) manifest
	// is read before JSON decoding.
	maxManifestBytes = 16 << 20
)

// storedFile identifies one companion file of the store with its
// integrity record.
type storedFile struct {
	Name  string `json:"name"`
	Size  int64  `json:"size"`
	CRC32 uint32 `json:"crc32"`
}

// shardSetManifest is the optional manifest block marking a store as one
// shard-set slice of a partitioned cluster (see SavePartitioned): which
// set it is, the cluster shape, and the global id of each local shard.
type shardSetManifest struct {
	Set         int   `json:"set"`
	Sets        int   `json:"sets"`
	TotalShards int   `json:"total_shards"`
	ShardIDs    []int `json:"shard_ids"`
}

// storeManifest is the JSON document tying the store together.
type storeManifest struct {
	FormatVersion  int               `json:"format_version"`
	Config         SessionConfig     `json:"config"`
	Groups         int               `json:"groups"`
	GroupingNanos  int64             `json:"grouping_nanos"`
	PartitionNanos int64             `json:"partition_nanos"`
	Build          []RankStats       `json:"build"`
	NumPeptides    int               `json:"num_peptides,omitempty"`
	ShardSet       *shardSetManifest `json:"shard_set,omitempty"`
	Mapping        storedFile        `json:"mapping"`
	Peptides       *storedFile       `json:"peptides,omitempty"`
	Shards         []storedFile      `json:"shards"`
}

// checksumWriter accumulates the whole-file CRC and byte count recorded
// in the manifest.
type checksumWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *checksumWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	cw.n += int64(n)
	return n, err
}

// writeStoreFile creates dir/name, streams fill through a CRC accountant,
// and returns the manifest record.
func writeStoreFile(dir, name string, fill func(io.Writer) error) (storedFile, error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return storedFile{}, err
	}
	cw := &checksumWriter{w: f}
	if err := fill(cw); err != nil {
		f.Close()
		return storedFile{}, fmt.Errorf("engine: writing %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return storedFile{}, fmt.Errorf("engine: writing %s: %w", name, err)
	}
	return storedFile{Name: name, Size: cw.n, CRC32: cw.crc}, nil
}

// storeSpec is everything saveStore persists into one store directory.
type storeSpec struct {
	cfg      SessionConfig
	groups   int
	groupNs  int64
	partNs   int64
	build    []RankStats
	shards   []*slm.Index
	table    core.MappingTable
	peptides []string          // may be nil
	shardSet *shardSetManifest // nil for a whole-store directory
}

// saveStore writes one store directory and returns its manifest digest.
// Both Save (the whole session) and SavePartitioned (one shard-set slice
// per call) funnel through it, so the two layouts cannot drift.
func saveStore(dir string, spec storeSpec) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("engine: save: %w", err)
	}

	man := storeManifest{
		FormatVersion:  storeFormatVersion,
		Config:         spec.cfg,
		Groups:         spec.groups,
		GroupingNanos:  spec.groupNs,
		PartitionNanos: spec.partNs,
		Build:          append([]RankStats(nil), spec.build...),
		ShardSet:       spec.shardSet,
	}

	// Shards write in parallel, mirroring the parallel load: each file is
	// independent, so save time does not grow linearly with shard count.
	man.Shards = make([]storedFile, len(spec.shards))
	werrs := make([]error, len(spec.shards))
	var wwg sync.WaitGroup
	for m, ix := range spec.shards {
		wwg.Add(1)
		go func(m int, ix *slm.Index) {
			defer wwg.Done()
			man.Shards[m], werrs[m] = writeStoreFile(dir, fmt.Sprintf(shardPattern, m), func(w io.Writer) error {
				_, err := ix.WriteTo(w)
				return err
			})
		}(m, ix)
	}
	wwg.Wait()
	for _, err := range werrs {
		if err != nil {
			return "", err
		}
	}

	blob, err := spec.table.MarshalBinary()
	if err != nil {
		return "", fmt.Errorf("engine: save: %w", err)
	}
	if man.Mapping, err = writeStoreFile(dir, mappingFile, func(w io.Writer) error {
		_, err := w.Write(blob)
		return err
	}); err != nil {
		return "", err
	}

	if spec.peptides != nil {
		// Fail fast on the wrong list (e.g. pre-digest proteins) instead
		// of persisting a store OpenSession will refuse. A shard-set
		// slice carries the full global list — its subset mapping returns
		// global indices, so sequence lookup needs every entry — while a
		// whole store's list matches the table exactly.
		if spec.shardSet == nil && len(spec.peptides) != spec.table.Len() {
			return "", fmt.Errorf("engine: save: %d peptides do not match the session's %d mapped entries",
				len(spec.peptides), spec.table.Len())
		}
		if spec.shardSet != nil && len(spec.peptides) < spec.table.Len() {
			return "", fmt.Errorf("engine: save: %d peptides cannot cover the set's %d mapped entries",
				len(spec.peptides), spec.table.Len())
		}
		for i, p := range spec.peptides {
			if strings.ContainsAny(p, "\r\n") {
				return "", fmt.Errorf("engine: save: peptide %d contains a line break", i)
			}
		}
		sf, err := writeStoreFile(dir, peptidesFile, func(w io.Writer) error {
			for _, p := range spec.peptides {
				if _, err := io.WriteString(w, p); err != nil {
					return err
				}
				if _, err := w.Write([]byte{'\n'}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return "", err
		}
		man.Peptides = &sf
		man.NumPeptides = len(spec.peptides)
	}

	// The manifest goes last: a store interrupted mid-save has no
	// manifest and is refused by OpenSession instead of half-loading.
	doc, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", fmt.Errorf("engine: save: %w", err)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(filepath.Join(dir, manifestFile), doc, 0o644); err != nil {
		return "", fmt.Errorf("engine: save: %w", err)
	}
	return manifestDigest(doc), nil
}

// Save persists the session as a store directory that OpenSession can
// warm-start from. peptides is the global peptide list the session was
// built over; pass nil to omit it (sequence reporting is then
// unavailable after reload). dir is created if needed; existing store
// files in it are overwritten. Saving a shard-set session preserves its
// shard-set identity.
func (s *Session) Save(dir string, peptides []string) error {
	// A mapped session may not have run its deferred store verification
	// yet; saving would re-encode the mapped bytes under fresh checksums,
	// so verify first rather than bless latent corruption.
	if err := s.verifyStore(); err != nil {
		return err
	}
	s.mu.Lock()
	closed := s.closed
	shards := s.shards
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("engine: save: session is closed")
	}
	digest, err := saveStore(dir, storeSpec{
		cfg:      SessionConfig{Config: s.cfg, Shards: len(shards)},
		groups:   s.groups,
		groupNs:  s.groupingNanos,
		partNs:   s.partitionNs,
		build:    s.build,
		shards:   shards,
		table:    s.table,
		peptides: peptides,
		shardSet: s.shardSetManifest(),
	})
	if err != nil {
		return err
	}
	// The session's identity is now the store: adopt the manifest hash so
	// this process agrees with every replica that warm-starts from dir.
	s.setDigest(digest)
	return nil
}

// ClusterManifest is the cluster.json document of a partitioned store: it
// names each shard-set directory with its manifest digest and composes
// the cluster-wide digest a scatter/gather router derives independently
// from its probes.
type ClusterManifest struct {
	FormatVersion int      `json:"format_version"`
	Sets          int      `json:"sets"`
	TotalShards   int      `json:"total_shards"`
	NumPeptides   int      `json:"num_peptides,omitempty"`
	SetDirs       []string `json:"set_dirs"`
	SetDigests    []string `json:"set_digests"`
	ClusterDigest string   `json:"cluster_digest"`
}

// ComposeClusterDigest derives the cluster-wide consistency digest from
// the ordered per-set store digests. lbe-index records it in cluster.json
// and a scatter/gather router recomputes it from the digests its probes
// observe; the two agree exactly when every shard-set serves the store
// the partitioning emitted, so answer-cache keys and the router's
// consistency gate compose across the partition boundary.
func ComposeClusterDigest(setDigests []string) string {
	h := sha256.New()
	io.WriteString(h, "lbe-cluster/v1\x00")
	for _, d := range setDigests {
		io.WriteString(h, d)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SavePartitioned persists the session as a partitioned cluster store:
// sets shard-set directories (set-%02d, each a self-contained store a
// shard-set holder warm-starts from with OpenSession) plus a cluster.json
// manifest composing their digests. Set i holds the contiguous shard
// range [i*P/sets, (i+1)*P/sets); each set's manifest records the global
// id of every local shard and its mapping subset still returns global
// peptide indices, so per-set search results carry whole-store
// identities and a front-end merge of the per-set top-K reproduces
// Session.Search byte for byte.
//
// peptides is the global peptide list; every set stores the full list
// (nil omits it everywhere). Unlike Save, the session's own digest is
// left untouched — the partitioning creates sets new store identities,
// not a new identity for this session.
func (s *Session) SavePartitioned(dir string, peptides []string, sets int) (*ClusterManifest, error) {
	// Same rationale as Save: never re-encode unverified mapped bytes.
	if err := s.verifyStore(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	closed := s.closed
	shards := s.shards
	s.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("engine: save: session is closed")
	}
	if s.shardSet != nil {
		return nil, fmt.Errorf("engine: save: session is already a shard-set slice; partition the whole-store session")
	}
	p := len(shards)
	if sets < 1 || sets > p {
		return nil, fmt.Errorf("engine: save: %d shard-sets out of range [1,%d]", sets, p)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: save: %w", err)
	}

	cm := &ClusterManifest{
		FormatVersion: storeFormatVersion,
		Sets:          sets,
		TotalShards:   p,
		NumPeptides:   len(peptides),
		SetDirs:       make([]string, sets),
		SetDigests:    make([]string, sets),
	}
	for i := 0; i < sets; i++ {
		lo, hi := i*p/sets, (i+1)*p/sets
		ids := make([]int, hi-lo)
		for j := range ids {
			ids[j] = lo + j
		}
		sub, err := s.table.Subset(ids)
		if err != nil {
			return nil, fmt.Errorf("engine: save: set %d: %w", i, err)
		}
		setDir := fmt.Sprintf(setDirPattern, i)
		digest, err := saveStore(filepath.Join(dir, setDir), storeSpec{
			cfg:     SessionConfig{Config: s.cfg, Shards: hi - lo},
			groups:  s.groups,
			groupNs: s.groupingNanos,
			partNs:  s.partitionNs,
			build:   s.build[lo:hi],
			shards:  shards[lo:hi],
			table:   sub,
			// Every set carries the full global list: its mapping subset
			// returns global indices, so sequence reporting needs all
			// entries.
			peptides: peptides,
			shardSet: &shardSetManifest{Set: i, Sets: sets, TotalShards: p, ShardIDs: ids},
		})
		if err != nil {
			return nil, err
		}
		cm.SetDirs[i] = setDir
		cm.SetDigests[i] = digest
	}
	cm.ClusterDigest = ComposeClusterDigest(cm.SetDigests)

	doc, err := json.MarshalIndent(cm, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("engine: save: %w", err)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(filepath.Join(dir, clusterFile), doc, 0o644); err != nil {
		return nil, fmt.Errorf("engine: save: %w", err)
	}
	return cm, nil
}

// ReadClusterManifest loads and validates dir/cluster.json, the manifest
// tying a partitioned store's shard-set directories together.
func ReadClusterManifest(dir string) (*ClusterManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, clusterFile))
	if err != nil {
		return nil, fmt.Errorf("engine: open: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cm ClusterManifest
	if err := dec.Decode(&cm); err != nil {
		return nil, fmt.Errorf("engine: open: parsing %s: %w", clusterFile, err)
	}
	if cm.FormatVersion != storeFormatVersion {
		return nil, fmt.Errorf("engine: open: unsupported cluster format version %d (want %d)",
			cm.FormatVersion, storeFormatVersion)
	}
	if cm.Sets < 1 || len(cm.SetDirs) != cm.Sets || len(cm.SetDigests) != cm.Sets {
		return nil, fmt.Errorf("engine: open: %s lists %d dirs / %d digests for %d sets",
			clusterFile, len(cm.SetDirs), len(cm.SetDigests), cm.Sets)
	}
	if want := ComposeClusterDigest(cm.SetDigests); cm.ClusterDigest != want {
		return nil, fmt.Errorf("engine: open: %s cluster digest does not compose from its set digests", clusterFile)
	}
	return &cm, nil
}

// manifestDigest fingerprints a store by its manifest bytes. Every
// replica that opens the same store computes the same value, and any
// difference in shape, content checksums or format version changes it —
// the manifest as the cluster's shape contract.
func manifestDigest(doc []byte) string {
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

// measuredReader feeds a shard file to slm.ReadIndex while accumulating
// the whole-file CRC. Len exposes the unread byte count so the SLMX
// decoder can bound its allocations against the true input size.
type measuredReader struct {
	r   io.Reader
	rem int64
	crc uint32
}

func (m *measuredReader) Read(p []byte) (int, error) {
	n, err := m.r.Read(p)
	m.crc = crc32.Update(m.crc, crc32.IEEETable, p[:n])
	m.rem -= int64(n)
	return n, err
}

func (m *measuredReader) Len() int {
	if m.rem < 0 {
		return 0
	}
	return int(m.rem)
}

// checkStoredName rejects manifest file names that would escape the
// store directory.
func checkStoredName(name string) error {
	if name == "" || name != filepath.Base(name) || name == "." || name == ".." {
		return fmt.Errorf("engine: open: manifest names invalid file %q", name)
	}
	return nil
}

// openStoredFile reads dir/name fully, verifying the manifest's size and
// whole-file CRC.
func openStoredFile(dir string, sf storedFile) ([]byte, error) {
	if err := checkStoredName(sf.Name); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, sf.Name)
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("engine: open: %w", err)
	}
	if fi.Size() != sf.Size {
		return nil, fmt.Errorf("engine: open: %s is %d bytes, manifest says %d", sf.Name, fi.Size(), sf.Size)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("engine: open: %w", err)
	}
	if crc := crc32.ChecksumIEEE(data); crc != sf.CRC32 {
		return nil, fmt.Errorf("engine: open: %s checksum %08x does not match manifest %08x", sf.Name, crc, sf.CRC32)
	}
	return data, nil
}

// openShard loads and verifies one SLMX shard file. With mapped set it
// first attempts a zero-copy mapped open (returning lazy=true: content
// verification is deferred, see shardVerifier); any mapped failure falls
// back to the heap path, whose error (if the file is genuinely bad) is
// the one reported — both readers enforce the same format checks, so a
// file one rejects the other rejects too.
func openShard(dir string, sf storedFile, mapped bool) (ix *slm.Index, lazy bool, err error) {
	if err := checkStoredName(sf.Name); err != nil {
		return nil, false, err
	}
	path := filepath.Join(dir, sf.Name)
	if mapped {
		if ix, err := openShardMapped(path, sf); err == nil {
			return ix, true, nil
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("engine: open: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, fmt.Errorf("engine: open: %w", err)
	}
	if fi.Size() != sf.Size {
		return nil, false, fmt.Errorf("engine: open: %s is %d bytes, manifest says %d", sf.Name, fi.Size(), sf.Size)
	}
	mr := &measuredReader{r: f, rem: fi.Size()}
	ix, err = slm.ReadIndex(mr)
	if err != nil {
		return nil, false, fmt.Errorf("engine: open: %s: %w", sf.Name, err)
	}
	// Drain read-ahead to EOF so the CRC covers the whole file; trailing
	// junk after the SLMX checksum surfaces as a manifest CRC mismatch.
	if _, err := io.Copy(io.Discard, mr); err != nil {
		return nil, false, fmt.Errorf("engine: open: %s: %w", sf.Name, err)
	}
	if mr.crc != sf.CRC32 {
		return nil, false, fmt.Errorf("engine: open: %s checksum %08x does not match manifest %08x", sf.Name, mr.crc, sf.CRC32)
	}
	return ix, false, nil
}

// openShardMapped opens one shard with mmap backing. Only the manifest's
// size and the SLMX header (CRC-protected section table) are checked
// here — no section byte is read, which is what makes a mapped warm
// start O(header) per shard instead of O(file). Content verification
// (section CRCs and the manifest's whole-file CRC) is deferred to the
// session's first query via shardVerifier.
func openShardMapped(path string, sf storedFile) (*slm.Index, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("engine: open: %w", err)
	}
	if fi.Size() != sf.Size {
		return nil, fmt.Errorf("engine: open: %s is %d bytes, manifest says %d", sf.Name, fi.Size(), sf.Size)
	}
	ix, err := slm.OpenIndexMapped(path)
	if err != nil {
		return nil, fmt.Errorf("engine: open: %s: %w", sf.Name, err)
	}
	return ix, nil
}

// shardVerifier is the deferred half of a mapped shard open, run once by
// the session before its first query: the index's own content checks
// (section CRCs, padding, CSR shape — this pass also faults the mapping
// in, so the first search runs warm), then the manifest's whole-file CRC
// over the store file, which catches shard files swapped between slots
// or replaced wholesale — corruptions the file-internal checksums cannot
// see because the files stay self-consistent.
func shardVerifier(dir string, sf storedFile, ix *slm.Index) func() error {
	return func() error {
		if err := ix.Verify(); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
		f, err := os.Open(filepath.Join(dir, sf.Name))
		if err != nil {
			return fmt.Errorf("engine: verify: %w", err)
		}
		cw := &checksumWriter{w: io.Discard}
		_, err = io.Copy(cw, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("engine: verify: %s: %w", sf.Name, err)
		}
		if cw.n != sf.Size || cw.crc != sf.CRC32 {
			return fmt.Errorf("engine: verify: %s checksum %08x does not match manifest %08x", sf.Name, cw.crc, sf.CRC32)
		}
		return nil
	}
}

// OpenOptions controls how OpenSession backs the loaded store.
type OpenOptions struct {
	// MapStore backs each shard index with a read-only memory mapping of
	// its SLMX file instead of decoding it into the heap: opening reads
	// only each file's CRC-protected header (near-instant warm start),
	// the index's resident bytes are kernel page cache shared with every
	// co-located process serving the same store, and clean pages are
	// reclaimable under memory pressure. Content verification — section
	// CRCs and the manifest's whole-file CRCs — is deferred to the
	// session's first query, so a corrupt store surfaces as a Search or
	// Stream error instead of an open error, always before any result is
	// produced. Results are byte-identical either way. Shards that
	// cannot be mapped (v1 files, platforms without mmap) silently fall
	// back to the eagerly-verified heap load; Session.MappedShards
	// reports the outcome.
	MapStore bool
}

// OpenSession warm-starts a session from a store directory written by
// Save: the manifest is validated, the mapping table and every shard
// index are reloaded (shards in parallel), and the cross-file shape is
// checked before the session is assembled. Mapped shards defer their
// content checksums to the session's first query (see
// OpenOptions.MapStore); everything else is verified here. The returned
// peptide list is the one saved alongside the session, or nil when the
// store was saved without peptides.
//
// Shard indexes are memory-mapped when the platform allows it (with
// automatic heap fallback); use OpenSessionOptions to force heap loads.
//
// The loaded session serves queries exactly as the session that saved it
// would: the indexes and mapping table are byte-for-byte the saved ones.
func OpenSession(dir string) (*Session, []string, error) {
	return OpenSessionOptions(dir, OpenOptions{MapStore: true})
}

// OpenSessionOptions is OpenSession with explicit control over the store
// backing.
func OpenSessionOptions(dir string, opts OpenOptions) (*Session, []string, error) {
	f, err := os.Open(filepath.Join(dir, manifestFile))
	if err != nil {
		if os.IsNotExist(err) {
			if _, cerr := os.Stat(filepath.Join(dir, clusterFile)); cerr == nil {
				return nil, nil, fmt.Errorf("engine: open: %s is a partitioned cluster store; open one of its %s directories",
					dir, fmt.Sprintf(setDirPattern, 0))
			}
		}
		return nil, nil, fmt.Errorf("engine: open: %w", err)
	}
	doc, err := io.ReadAll(io.LimitReader(f, maxManifestBytes+1))
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("engine: open: reading manifest: %w", err)
	}
	if len(doc) > maxManifestBytes {
		return nil, nil, fmt.Errorf("engine: open: manifest exceeds %d bytes", maxManifestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.DisallowUnknownFields()
	var man storeManifest
	if err := dec.Decode(&man); err != nil {
		return nil, nil, fmt.Errorf("engine: open: parsing manifest: %w", err)
	}
	if man.FormatVersion != storeFormatVersion {
		return nil, nil, fmt.Errorf("engine: open: unsupported store format version %d (want %d)",
			man.FormatVersion, storeFormatVersion)
	}
	p := man.Config.Shards
	if p < 1 {
		return nil, nil, fmt.Errorf("engine: open: manifest declares %d shards", p)
	}
	if len(man.Shards) != p {
		return nil, nil, fmt.Errorf("engine: open: manifest lists %d shard files for %d shards", len(man.Shards), p)
	}
	if len(man.Build) != p {
		return nil, nil, fmt.Errorf("engine: open: manifest has %d build stats for %d shards", len(man.Build), p)
	}
	if err := man.Config.Params.Validate(); err != nil {
		return nil, nil, fmt.Errorf("engine: open: stored config: %w", err)
	}
	if ss := man.ShardSet; ss != nil {
		if ss.Sets < 1 || ss.Set < 0 || ss.Set >= ss.Sets {
			return nil, nil, fmt.Errorf("engine: open: manifest names shard-set %d of %d", ss.Set, ss.Sets)
		}
		if len(ss.ShardIDs) != p {
			return nil, nil, fmt.Errorf("engine: open: manifest lists %d global shard ids for %d shards",
				len(ss.ShardIDs), p)
		}
		if ss.TotalShards < p {
			return nil, nil, fmt.Errorf("engine: open: shard-set holds %d shards of a %d-shard cluster",
				p, ss.TotalShards)
		}
		for i, id := range ss.ShardIDs {
			if id < 0 || id >= ss.TotalShards {
				return nil, nil, fmt.Errorf("engine: open: global shard id %d out of range [0,%d)", id, ss.TotalShards)
			}
			if i > 0 && id <= ss.ShardIDs[i-1] {
				return nil, nil, fmt.Errorf("engine: open: global shard ids are not strictly increasing")
			}
		}
	}

	blob, err := openStoredFile(dir, man.Mapping)
	if err != nil {
		return nil, nil, err
	}
	table, err := core.UnmarshalMappingTable(blob)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: open: %s: %w", man.Mapping.Name, err)
	}
	if table.Machines() != p {
		return nil, nil, fmt.Errorf("engine: open: mapping covers %d machines, manifest declares %d shards",
			table.Machines(), p)
	}

	var peptides []string
	if man.Peptides != nil {
		data, err := openStoredFile(dir, *man.Peptides)
		if err != nil {
			return nil, nil, err
		}
		if len(data) > 0 {
			if data[len(data)-1] != '\n' {
				return nil, nil, fmt.Errorf("engine: open: %s is not newline-terminated", man.Peptides.Name)
			}
			peptides = strings.Split(string(data[:len(data)-1]), "\n")
		} else {
			peptides = []string{}
		}
		if len(peptides) != man.NumPeptides {
			return nil, nil, fmt.Errorf("engine: open: %s holds %d peptides, manifest says %d",
				man.Peptides.Name, len(peptides), man.NumPeptides)
		}
		// A whole store's list matches the mapping exactly; a shard-set
		// slice stores the full global list, of which its subset mapping
		// covers only its own shards' share.
		if man.ShardSet == nil && table.Len() != len(peptides) {
			return nil, nil, fmt.Errorf("engine: open: mapping covers %d peptides, store holds %d",
				table.Len(), len(peptides))
		}
		if man.ShardSet != nil && table.Len() > len(peptides) {
			return nil, nil, fmt.Errorf("engine: open: mapping covers %d peptides, store holds only %d",
				table.Len(), len(peptides))
		}
	}

	// Shards load in parallel. Heap opens decode and verify everything
	// here (O(index bytes)); mapped opens validate headers only
	// (O(header) — the near-instant warm start) and push their content
	// verification into lazy, run by the session before its first query.
	shards := make([]*slm.Index, p)
	lazy := make([]func() error, 0, p)
	lazyFor := make([]bool, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for m := 0; m < p; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			shards[m], lazyFor[m], errs[m] = openShard(dir, man.Shards[m], opts.MapStore)
		}(m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	for m, ix := range shards {
		if lazyFor[m] {
			lazy = append(lazy, shardVerifier(dir, man.Shards[m], ix))
		}
	}

	// Cross-file shape checks: every shard must agree with the manifest's
	// build stats and fit inside its mapping chunk, so a query can never
	// hit an unmappable virtual index. The params check closes the gap
	// between the human-editable JSON manifest and the CRC-protected
	// SLMX files: query preprocessing runs off the manifest's Params
	// while matching runs off each shard's, so they must be identical.
	for m, ix := range shards {
		if !reflect.DeepEqual(ix.Params(), man.Config.Params) {
			return nil, nil, fmt.Errorf("engine: open: shard %d params disagree with the manifest", m)
		}
		if ix.NumRows() != man.Build[m].Rows {
			return nil, nil, fmt.Errorf("engine: open: shard %d has %d rows, manifest says %d",
				m, ix.NumRows(), man.Build[m].Rows)
		}
		if np := ix.NumPeptides(); np > table.MachineLen(m) {
			return nil, nil, fmt.Errorf("engine: open: shard %d indexes %d peptides but the mapping grants it %d",
				m, np, table.MachineLen(m))
		}
	}

	s := &Session{
		cfg:           man.Config.Config,
		shards:        shards,
		table:         table,
		groups:        man.Groups,
		groupingNanos: man.GroupingNanos,
		partitionNs:   man.PartitionNanos,
		build:         man.Build,
	}
	if ss := man.ShardSet; ss != nil {
		s.shardSet = &ShardSetInfo{
			Set:         ss.Set,
			Sets:        ss.Sets,
			TotalShards: ss.TotalShards,
			ShardIDs:    append([]int(nil), ss.ShardIDs...),
		}
	}
	s.load = append([]RankStats(nil), s.build...)
	s.pool = s.cfg.newSessionPool()
	s.digest = manifestDigest(doc)
	s.storeVerify = lazy
	return s, peptides, nil
}

// shardSetManifest renders the session's shard-set identity for a saved
// manifest, nil for a whole-store session.
func (s *Session) shardSetManifest() *shardSetManifest {
	if s.shardSet == nil {
		return nil
	}
	return &shardSetManifest{
		Set:         s.shardSet.Set,
		Sets:        s.shardSet.Sets,
		TotalShards: s.shardSet.TotalShards,
		ShardIDs:    append([]int(nil), s.shardSet.ShardIDs...),
	}
}

// Tune adjusts the session's runtime knobs after OpenSession: the
// scheduler worker budget and the pipeline batch size (values <= 0 keep
// the stored setting). Results are invariant to both. Streams already
// open keep the pool they snapshotted; call Tune before serving.
func (s *Session) Tune(threads, batch int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if threads > 0 {
		s.cfg.ThreadsPerRank = threads
	}
	if batch > 0 {
		s.cfg.BatchSize = batch
	}
	s.pool = s.cfg.newSessionPool()
}

// TuneScheduler adjusts the execution-layer knobs: the chunk granularity
// (chunk < 0 keeps the current setting, 0 restores auto-tuning) and the
// scheduling mode. Results are invariant to both; only the schedule and
// its telemetry change. Streams already open keep the pool they
// snapshotted.
func (s *Session) TuneScheduler(chunk int, stealing bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if chunk >= 0 {
		s.cfg.ChunkSize = chunk
	}
	s.cfg.Stealing = stealing
	s.pool = s.cfg.newSessionPool()
}
