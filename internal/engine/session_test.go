package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"lbe/internal/core"
	"lbe/internal/digest"
	"lbe/internal/gen"
	"lbe/internal/spectrum"
)

// requireSamePSMs asserts that got matches want query-for-query and
// PSM-for-PSM in every field except Origin (which records provenance and
// legitimately differs between a serial run and a sharded one).
func requireSamePSMs(t *testing.T, label string, got, want [][]PSM) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d queries, want %d", label, len(got), len(want))
	}
	for q := range want {
		if len(got[q]) != len(want[q]) {
			t.Fatalf("%s query %d: %d PSMs, want %d", label, q, len(got[q]), len(want[q]))
		}
		for i := range want[q] {
			g, w := got[q][i], want[q][i]
			if g.Peptide != w.Peptide || g.Shared != w.Shared || g.Score != w.Score || g.Precursor != w.Precursor {
				t.Fatalf("%s query %d psm %d: %+v, want %+v", label, q, i, g, w)
			}
		}
	}
}

// TestSessionMatchesSerial is the tentpole equivalence guarantee: the
// streaming Session returns PSMs exactly equal to the RunSerial reference
// for every policy × shard count × thread count × batch size combination.
func TestSessionMatchesSerial(t *testing.T) {
	peptides, queries, _ := testDataset(t, 10, 2, 60)
	base := lightConfig()

	serial, err := RunSerial(peptides, queries, base)
	if err != nil {
		t.Fatal(err)
	}
	nPSMs := 0
	for _, qs := range serial.PSMs {
		nPSMs += len(qs)
	}
	if nPSMs == 0 {
		t.Fatal("serial reference found no PSMs; dataset too small")
	}

	type knobs struct{ threads, batch int }
	for _, policy := range []core.Policy{core.Chunk, core.Cyclic, core.Random, core.RandomWithinGroups} {
		for _, shards := range []int{1, 3} {
			for _, k := range []knobs{{1, 1}, {2, 7}, {4, 0}, {3, 1000}} {
				cfg := SessionConfig{Config: base, Shards: shards}
				cfg.Policy = policy
				cfg.Seed = 5
				cfg.ThreadsPerRank = k.threads
				cfg.BatchSize = k.batch
				label := fmt.Sprintf("%v/shards=%d/threads=%d/batch=%d", policy, shards, k.threads, k.batch)
				sess, err := NewSession(peptides, cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				res, err := sess.Search(context.Background(), queries)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				requireSamePSMs(t, label, res.PSMs, serial.PSMs)
				if res.CandidatePSMs() != serial.CandidatePSMs() {
					t.Fatalf("%s: scored %d, serial %d", label, res.CandidatePSMs(), serial.CandidatePSMs())
				}
				sess.Close()
			}
		}
	}
}

// TestSessionTopKMatchesSerial covers the truncated-report path end to end.
func TestSessionTopKMatchesSerial(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 30)
	cfg := lightConfig()
	cfg.TopK = 3
	serial, err := RunSerial(peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := SessionConfig{Config: cfg, Shards: 4}
	scfg.BatchSize = 8
	scfg.ThreadsPerRank = 2
	sess, err := NewSession(peptides, scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Search(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	requireSamePSMs(t, "topk", res.PSMs, serial.PSMs)
}

// TestSessionServesRepeatedBatches: the point of a Session — repeated
// searches over the same built engine return identical results and the
// load accounting accumulates.
func TestSessionServesRepeatedBatches(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 24)
	cfg := SessionConfig{Config: lightConfig(), Shards: 3}
	cfg.BatchSize = 5
	sess, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	a, err := sess.Search(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Search(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	requireSamePSMs(t, "repeat", b.PSMs, a.PSMs)
	if got := sess.Searched(); got != int64(2*len(queries)) {
		t.Errorf("lifetime searched = %d, want %d", got, 2*len(queries))
	}
	sts := sess.Stats()
	if len(sts) != 3 {
		t.Fatalf("lifetime stats for %d shards", len(sts))
	}
	var work int64
	for _, s := range sts {
		work += s.Work.Scored
	}
	if work != 2*a.CandidatePSMs() {
		t.Errorf("lifetime scored %d, want %d", work, 2*a.CandidatePSMs())
	}
}

// TestStreamOrderingAndEquivalence: batches pushed through a Stream come
// out in push order with the offsets and contents Search would produce.
func TestStreamOrderingAndEquivalence(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 33)
	cfg := SessionConfig{Config: lightConfig(), Shards: 2}
	cfg.ThreadsPerRank = 2
	sess, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	want, err := sess.Search(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}

	st, err := sess.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Uneven batch sizes exercise offset bookkeeping.
	go func() {
		defer st.Close()
		sizes := []int{1, 7, 3, 12, 5, 100}
		off := 0
		for _, n := range sizes {
			if off >= len(queries) {
				return
			}
			end := off + n
			if end > len(queries) {
				end = len(queries)
			}
			if st.Push(queries[off:end]) != nil {
				return
			}
			off = end
		}
	}()

	got := make([][]PSM, len(queries))
	seq := 0
	covered := 0
	for br := range st.Results() {
		if br.Seq != seq {
			t.Fatalf("batch seq %d arrived, want %d", br.Seq, seq)
		}
		if br.Offset != covered {
			t.Fatalf("batch offset %d, want %d", br.Offset, covered)
		}
		copy(got[br.Offset:], br.PSMs)
		covered += len(br.PSMs)
		seq++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if covered != len(queries) {
		t.Fatalf("stream covered %d of %d queries", covered, len(queries))
	}
	requireSamePSMs(t, "stream", got, want.PSMs)
}

// waitForGoroutines polls until the goroutine count drops back to at most
// base (allowing the runtime's own background goroutines to come and go).
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d alive, want <= %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamCancellation: cancelling a stream's context shuts every
// pipeline stage down promptly and leaks no goroutines.
func TestStreamCancellation(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 40)
	cfg := SessionConfig{Config: lightConfig(), Shards: 2}
	cfg.ThreadsPerRank = 2
	cfg.BatchSize = 2
	sess, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	st, err := sess.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Keep pushing from the background until cancellation rejects a push.
	pushDone := make(chan struct{})
	go func() {
		defer close(pushDone)
		for {
			if err := st.Push(queries); err != nil {
				return
			}
		}
	}()
	// Let a few batches through, then pull the plug.
	<-st.Results()
	cancel()

	select {
	case <-pushDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Push did not unblock after cancellation")
	}
	drained := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-st.Results():
			if !ok {
				if err := st.Err(); err != context.Canceled {
					t.Fatalf("stream error = %v, want context.Canceled", err)
				}
				waitForGoroutines(t, base)
				return
			}
		case <-drained:
			t.Fatal("Results did not close after cancellation")
		}
	}
}

// TestSearchCancellation: Session.Search must return the context error and
// leak nothing when cancelled mid-run.
func TestSearchCancellation(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 60)
	cfg := SessionConfig{Config: lightConfig(), Shards: 2}
	cfg.BatchSize = 1
	sess, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: Search must fail fast
	if _, err := sess.Search(ctx, queries); err == nil {
		t.Fatal("Search succeeded with a cancelled context")
	}
	waitForGoroutines(t, base)

	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := sess.Search(ctx, queries); err == nil {
		// A fast machine may legitimately finish before the cancel lands;
		// only a hang or a leak is a failure.
		t.Log("search finished before cancellation landed")
	}
	waitForGoroutines(t, base)
}

// TestRunInProcessCtxCancellation: the distributed runner must unblock all
// ranks and return promptly when cancelled.
func TestRunInProcessCtxCancellation(t *testing.T) {
	peptides, queries, _ := testDataset(t, 10, 2, 80)
	cfg := lightConfig()
	cfg.BatchSize = 1

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunInProcessCtx(ctx, 4, peptides, queries, cfg)
	if err == nil && res == nil {
		t.Fatal("nil result without error")
	}
	if err != nil && time.Since(start) > 30*time.Second {
		t.Fatalf("cancellation took %v", time.Since(start))
	}
	waitForGoroutines(t, base)
}

// TestSessionClosed: a closed session refuses new work.
func TestSessionClosed(t *testing.T) {
	peptides, queries, _ := testDataset(t, 4, 1, 5)
	sess, err := NewSession(peptides, SessionConfig{Config: lightConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if _, err := sess.Stream(context.Background()); err == nil {
		t.Error("Stream on closed session must fail")
	}
	if _, err := sess.Search(context.Background(), queries); err == nil {
		t.Error("Search on closed session must fail")
	}
}

// TestSessionEmptyInputs: sessions over empty databases and empty query
// sets behave like the serial baseline.
func TestSessionEmptyInputs(t *testing.T) {
	_, queries, _ := testDataset(t, 4, 1, 5)
	sess, err := NewSession(nil, SessionConfig{Config: lightConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Search(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for q, psms := range res.PSMs {
		if len(psms) != 0 {
			t.Errorf("query %d matched against empty database", q)
		}
	}
	sess.Close()

	peptides, _, _ := testDataset(t, 4, 1, 0)
	sess, err = NewSession(peptides, SessionConfig{Config: lightConfig(), Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err = sess.Search(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PSMs) != 0 || len(res.Stats) != 3 {
		t.Errorf("empty query run: %d PSMs, %d stats", len(res.PSMs), len(res.Stats))
	}
}

// TestSingleRankFailureDoesNotHang: an error on one rank only (a bad
// peptide in its partition) must tear the cluster down and surface the
// root cause, not leave the healthy ranks deadlocked in the barrier.
func TestSingleRankFailureDoesNotHang(t *testing.T) {
	peptides := make([]string, 30)
	for i := range peptides {
		peptides[i] = "ACDEFGHIKLMNPQRSTVWY"
	}
	peptides[29] = "PEPT!DEK" // invalid residue, lands in the last chunk only
	cfg := lightConfig()
	cfg.RawOrder = true
	cfg.Policy = core.Chunk

	done := make(chan error, 1)
	go func() {
		_, err := RunInProcess(3, peptides, nil, cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with an invalid peptide succeeded")
		}
		if !strings.Contains(err.Error(), "build") {
			t.Fatalf("error does not name the build failure: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("single-rank failure deadlocked the cluster")
	}
}

// benchCorpus generates approximately n deduplicated peptides (sliced to
// exactly n) plus a query run.
func benchCorpus(b *testing.B, n, nspectra int) ([]string, []spectrum.Experimental) {
	b.Helper()
	families := n/20 + 1
	recs, err := gen.Proteome(gen.ProteomeConfig{
		Seed: 41, NumFamilies: families, Homologs: 2, MeanLen: 300, MutationRate: 0.03,
	})
	if err != nil {
		b.Fatal(err)
	}
	seqs := make([]string, len(recs))
	for i, r := range recs {
		seqs[i] = r.Sequence
	}
	peps, err := digest.DefaultConfig().Proteome(seqs)
	if err != nil {
		b.Fatal(err)
	}
	peptides := digest.Sequences(digest.Dedup(peps))
	if len(peptides) < n {
		b.Fatalf("corpus too small: %d peptides for target %d", len(peptides), n)
	}
	peptides = peptides[:n]
	scfg := gen.DefaultSpectraConfig()
	scfg.NumSpectra = nspectra
	scfg.Seed = 42
	queries, _, err := gen.Spectra(peptides, scfg)
	if err != nil {
		b.Fatal(err)
	}
	return peptides, queries
}

// BenchmarkSessionSearch measures steady-state streaming search over a
// prebuilt session at increasing database scales.
func BenchmarkSessionSearch(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 50_000} {
		b.Run(fmt.Sprintf("peptides=%d", n), func(b *testing.B) {
			peptides, queries := benchCorpus(b, n, 200)
			cfg := DefaultSessionConfig()
			cfg.Params.Mods.MaxPerPep = 0 // unmodified index keeps setup fast
			cfg.Shards = 4
			sess, err := NewSession(peptides, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Search(context.Background(), queries); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(queries)), "queries/op")
		})
	}
}
