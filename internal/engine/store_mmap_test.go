package engine

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"lbe/internal/core"
)

// TestMappedOpenMatchesHeapOpen pins the mmap tentpole at the engine
// layer: for every policy × shard count, a session whose shards are
// zero-copy views of the store files must be indistinguishable from a
// heap-loaded one — identical digest, identical accounting, and
// byte-identical PSMs with provenance.
func TestMappedOpenMatchesHeapOpen(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 40)
	base := lightConfig()
	ctx := context.Background()

	for _, policy := range []core.Policy{core.Chunk, core.Cyclic, core.Random} {
		for _, shards := range []int{1, 3} {
			label := fmt.Sprintf("%v/shards=%d", policy, shards)
			cfg := SessionConfig{Config: base, Shards: shards}
			cfg.Policy = policy
			cfg.Seed = 7
			live, err := NewSession(peptides, cfg)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			dir := filepath.Join(t.TempDir(), "store")
			if err := live.Save(dir, peptides); err != nil {
				t.Fatalf("%s: save: %v", label, err)
			}
			live.Close()

			heap, _, err := OpenSessionOptions(dir, OpenOptions{MapStore: false})
			if err != nil {
				t.Fatalf("%s: heap open: %v", label, err)
			}
			mapped, _, err := OpenSessionOptions(dir, OpenOptions{MapStore: true})
			if err != nil {
				t.Fatalf("%s: mapped open: %v", label, err)
			}
			if n := heap.MappedShards(); n != 0 {
				t.Fatalf("%s: heap open reports %d mapped shards", label, n)
			}
			if runtime.GOOS == "linux" && mapped.MappedShards() != shards {
				t.Fatalf("%s: mapped open backed %d of %d shards", label, mapped.MappedShards(), shards)
			}
			if heap.Digest() != mapped.Digest() {
				t.Fatalf("%s: digests differ by open mode: %s vs %s", label, heap.Digest(), mapped.Digest())
			}
			if heap.IndexBytes() != mapped.IndexBytes() {
				t.Fatalf("%s: index accounting differs: heap %d, mapped %d",
					label, heap.IndexBytes(), mapped.IndexBytes())
			}

			want, err := heap.Search(ctx, queries)
			if err != nil {
				t.Fatalf("%s: heap search: %v", label, err)
			}
			got, err := mapped.Search(ctx, queries)
			if err != nil {
				t.Fatalf("%s: mapped search: %v", label, err)
			}
			requireIdenticalPSMs(t, label, got.PSMs, want.PSMs)
			if got.CandidatePSMs() != want.CandidatePSMs() {
				t.Fatalf("%s: scored %d, heap scored %d", label, got.CandidatePSMs(), want.CandidatePSMs())
			}
			if !reflect.DeepEqual(workOnly(got.Stats), workOnly(want.Stats)) {
				t.Fatalf("%s: deterministic work differs by open mode", label)
			}
			mapped.Close()
			heap.Close()
		}
	}
}

// workOnly projects the deterministic work counters out of rank stats
// (wall times legitimately differ between runs).
func workOnly(stats []RankStats) []any {
	out := make([]any, len(stats))
	for i, s := range stats {
		out[i] = struct {
			Rows     int
			Peptides int
			IonHits  int64
			Scored   int64
		}{s.Rows, s.Peptides, s.Work.IonHits, s.Work.Scored}
	}
	return out
}
