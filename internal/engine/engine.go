// Package engine runs LBE-distributed peptide search: it partitions the
// peptide database across a communicator with the configured LBE policy,
// builds one partial SLM index per rank, searches every query spectrum on
// every rank concurrently, and merges results at the master through the
// O(1) mapping table (paper §III-D/E, Fig. 3 and Fig. 4).
//
// Every run mode is built on one channel-based query pipeline (see
// pipeline.go): queries flow in configurable batches through preprocess →
// search → incremental merge stages with context cancellation threaded
// through every stage. RunRankCtx wires the pipeline to a communicator;
// Session keeps it hot over in-process shards for repeated streaming
// query batches.
//
// The same search can be run serially (RunSerial) as the correctness
// reference and as the shared-memory baseline for the memory-footprint
// comparison.
package engine

import (
	"fmt"
	"sort"
	"time"

	"lbe/internal/core"
	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// Config assembles all the knobs of a distributed search run.
type Config struct {
	Params slm.Params       // SLM index/search parameters
	Group  core.GroupConfig // Algorithm 1 grouping parameters
	Policy core.Policy      // data distribution policy
	Seed   int64            // seed for the Random policies
	TopK   int              // matches kept per query at the master; 0 = all
	// RawOrder disables LBE grouping and partitions the database in its
	// original order (the no-clustering ablation baseline).
	RawOrder bool
	// ThreadsPerRank enables the hybrid "OpenMP within MPI" parallelism
	// of the paper's future work (§VIII): each rank searches its query
	// batch with a pool of this many scheduler workers (internal/sched).
	// In the distributed runners 0 or 1 means serial (the per-machine
	// parallelism is the ranks). In a Session the budget is shared across
	// every in-process shard and 0 defaults to one worker per core.
	// Results are invariant to the count.
	ThreadsPerRank int
	// ChunkSize is the scheduler's task granularity: queries per chunk on
	// the per-shard work deques. 0 auto-tunes from the observed work per
	// query (sched.Tuner). Results are invariant to the chunk size.
	ChunkSize int
	// Stealing selects the work-stealing scheduler: idle workers steal
	// half of the fullest shard deque instead of idling beside a skewed
	// partition. False keeps the chunks statically pre-dealt (the legacy
	// strided/per-shard baseline measured by bench.Steal). Results are
	// invariant to the schedule.
	Stealing bool
	// Weights gives relative machine speeds for heterogeneous clusters
	// (§VIII's load-predicting model); peptide shares are proportional.
	// Nil or empty means a symmetric cluster. When set, its length must
	// equal the communicator size.
	Weights []float64
	// BatchSize is the pipeline granularity: queries flow through the
	// preprocess → search → merge stages in batches of this many spectra,
	// overlapping compute with communication. 0 falls back to ResultBatch,
	// and if that is also 0 the whole run is one batch (one message per
	// worker, the paper's description). Results are identical for every
	// batch size.
	BatchSize int
	// ResultBatch is the legacy name of BatchSize, honored when BatchSize
	// is 0.
	ResultBatch int
	// BuildWorkers is the per-rank index construction parallelism; 0 uses
	// one worker per available core. The built index is byte-identical
	// for any worker count.
	BuildWorkers int
}

// DefaultConfig mirrors the paper's experimental setup with the cyclic
// policy and top-10 PSMs per query.
func DefaultConfig() Config {
	return Config{
		Params:   slm.DefaultParams(),
		Group:    core.DefaultGroupConfig(),
		Policy:   core.Cyclic,
		TopK:     10,
		Stealing: true,
	}
}

// PSM is a peptide-to-spectrum match resolved to the global peptide list.
type PSM struct {
	Peptide   uint32  // index into the original peptide list
	Shared    uint16  // shared-peak count
	Score     float64 // match score
	Precursor float64 // matched variant's neutral mass
	Origin    int     // rank whose partition produced the match
}

// RankStats describes one rank's share of the run; the load-balance
// figures are computed from these.
type RankStats struct {
	Rank           int
	Peptides       int      // peptides in this rank's partition
	Rows           int      // indexed spectra (peptide variants)
	IndexBytes     int      // resident partial-index size
	BuildPeakBytes int      // transient peak during construction
	BuildNanos     int64    // wall time of local index construction
	QueryNanos     int64    // wall time of the local query phase
	Work           slm.Work // deterministic work units
}

// QueryTimes projects per-rank query wall times in seconds.
func QueryTimes(stats []RankStats) []float64 {
	out := make([]float64, len(stats))
	for i, s := range stats {
		out[i] = time.Duration(s.QueryNanos).Seconds()
	}
	return out
}

// WorkUnits projects per-rank deterministic work (ion hits + scored
// candidates), the quantity LBE balances.
func WorkUnits(stats []RankStats) []float64 {
	out := make([]float64, len(stats))
	for i, s := range stats {
		out[i] = float64(s.Work.IonHits + s.Work.Scored)
	}
	return out
}

// Result is the master's view of a finished run.
type Result struct {
	// PSMs[q] holds query q's matches, best first.
	PSMs [][]PSM
	// Stats holds one entry per rank.
	Stats []RankStats
	// MappingBytes is the master mapping table footprint.
	MappingBytes int
	// GroupingNanos, PartitionNanos cover the serial LBE preprocessing.
	GroupingNanos  int64
	PartitionNanos int64
	// QueryNanos is the master-observed wall time of the distributed
	// query phase (barrier to last result gathered).
	QueryNanos int64
	// TotalNanos is the master-observed wall time of the whole run.
	TotalNanos int64
	// Groups is the number of LBE groups formed.
	Groups int
}

// CandidatePSMs returns the total number of candidate PSMs (the quantity
// the paper reports as 22.5 billion for the full dataset).
func (r *Result) CandidatePSMs() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.Work.Scored
	}
	return n
}

// sortPSMs orders matches best-first with deterministic tie-breaking over
// every merge-order-independent field, so the sorted output is identical
// no matter which path (serial, session shards, distributed gather)
// produced the unsorted slice.
func sortPSMs(ms []PSM) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Peptide != b.Peptide {
			return a.Peptide < b.Peptide
		}
		if a.Precursor != b.Precursor {
			return a.Precursor < b.Precursor
		}
		return a.Shared > b.Shared
	})
}

// RunSerial searches queries against a single shared-memory index over the
// whole peptide list: the baseline system LBE distributes. The returned
// Result has one RankStats entry (rank 0).
func RunSerial(peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	start := time.Now()
	buildStart := time.Now()
	// The baseline is serial end to end — including construction — so its
	// BuildNanos stays meaningful as the calibration input of the
	// execution-time model (internal/bench). The parallel build is proven
	// byte-identical, so results are unaffected either way.
	ix, err := slm.BuildSerial(peptides, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("engine: serial build: %w", err)
	}
	buildNanos := time.Since(buildStart).Nanoseconds()

	qs := spectrum.PreprocessAll(queries, cfg.Params.MaxQueryPeaks)
	queryStart := time.Now()
	matches, work := ix.SearchAll(qs, 0)
	queryNanos := time.Since(queryStart).Nanoseconds()

	res := &Result{
		PSMs: make([][]PSM, len(queries)),
		Stats: []RankStats{{
			Rank:           0,
			Peptides:       len(peptides),
			Rows:           ix.NumRows(),
			IndexBytes:     ix.MemoryBytes(),
			BuildPeakBytes: ix.BuildPeakBytes(),
			BuildNanos:     buildNanos,
			QueryNanos:     queryNanos,
			Work:           work,
		}},
		QueryNanos: queryNanos,
	}
	for q, ms := range matches {
		psms := make([]PSM, len(ms))
		for i, m := range ms {
			psms[i] = PSM{
				Peptide:   m.Peptide, // local == global in the serial case
				Shared:    m.Shared,
				Score:     m.Score,
				Precursor: m.Precursor,
				Origin:    0,
			}
		}
		sortPSMs(psms)
		if cfg.TopK > 0 && len(psms) > cfg.TopK {
			psms = psms[:cfg.TopK]
		}
		res.PSMs[q] = psms
	}
	res.TotalNanos = time.Since(start).Nanoseconds()
	return res, nil
}
