package engine

import (
	"testing"

	"lbe/internal/core"
	"lbe/internal/stats"
)

// TestThreadsPerRankResultsInvariant: the hybrid intra-rank parallelism
// (§VIII) must not change results or total work for any thread count.
func TestThreadsPerRankResultsInvariant(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 40)
	base := lightConfig()
	ref, err := RunInProcess(3, peptides, queries, base)
	if err != nil {
		t.Fatal(err)
	}
	want := psmSet(ref.PSMs)

	for _, threads := range []int{2, 4, 9} {
		cfg := base
		cfg.ThreadsPerRank = threads
		res, err := RunInProcess(3, peptides, queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := psmSet(res.PSMs)
		if len(got) != len(want) {
			t.Fatalf("threads=%d: %d PSMs vs %d", threads, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("threads=%d: PSM %s count %d vs %d", threads, k, got[k], n)
			}
		}
		if res.CandidatePSMs() != ref.CandidatePSMs() {
			t.Fatalf("threads=%d: work changed: %d vs %d",
				threads, res.CandidatePSMs(), ref.CandidatePSMs())
		}
	}
}

// TestWeightedEngineResultsInvariant: heterogeneous weighted partitioning
// must redistribute data without changing the merged results.
func TestWeightedEngineResultsInvariant(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 40)
	cfg := lightConfig()
	serial, err := RunSerial(peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := psmSet(serial.PSMs)

	cfg.Weights = []float64{4, 2, 1, 1}
	for _, policy := range []core.Policy{core.Chunk, core.Cyclic} {
		cfg.Policy = policy
		res, err := RunInProcess(4, peptides, queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := psmSet(res.PSMs)
		if len(got) != len(want) {
			t.Fatalf("%v: %d PSMs vs serial %d", policy, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("%v: PSM %s count %d vs %d", policy, k, got[k], n)
			}
		}
	}
}

// TestWeightedBalancesHeterogeneousCluster simulates a cluster where rank
// 0 is 4x faster: with uniform partitioning the modeled per-rank times
// (work divided by speed) are imbalanced; weighted partitioning fixes it.
func TestWeightedBalancesHeterogeneousCluster(t *testing.T) {
	peptides, queries, _ := testDataset(t, 12, 3, 150)
	speeds := []float64{4, 1, 1, 1}

	modeledLI := func(weights []float64) float64 {
		cfg := lightConfig()
		cfg.Policy = core.Cyclic
		cfg.Weights = weights
		res, err := RunInProcess(4, peptides, queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wu := WorkUnits(res.Stats)
		times := make([]float64, len(wu))
		for i := range wu {
			times[i] = wu[i] / speeds[i] // modeled wall time on machine i
		}
		return stats.LoadImbalance(times)
	}

	uniform := modeledLI(nil)
	weighted := modeledLI(speeds)
	t.Logf("heterogeneous modeled LI: uniform=%.3f weighted=%.3f", uniform, weighted)
	if weighted >= uniform {
		t.Errorf("weighted LI %.3f not better than uniform %.3f", weighted, uniform)
	}
	if weighted > 0.15 {
		t.Errorf("weighted LI %.3f too high", weighted)
	}
}

// TestWeightsLengthMismatch: a weights vector of the wrong length must be
// rejected before any work starts.
func TestWeightsLengthMismatch(t *testing.T) {
	peptides, queries, _ := testDataset(t, 4, 1, 5)
	cfg := lightConfig()
	cfg.Weights = []float64{1, 2}
	if _, err := RunInProcess(4, peptides, queries, cfg); err == nil {
		t.Error("mismatched weights must fail")
	}
}

// TestResultBatchStreamingInvariant: streaming workers' results in slabs
// must not change the merged PSMs or the work accounting, for any batch
// size including degenerate ones.
func TestResultBatchStreamingInvariant(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 37)
	base := lightConfig()
	ref, err := RunInProcess(4, peptides, queries, base)
	if err != nil {
		t.Fatal(err)
	}
	want := psmSet(ref.PSMs)
	for _, batch := range []int{1, 7, 36, 37, 1000} {
		cfg := base
		cfg.ResultBatch = batch
		res, err := RunInProcess(4, peptides, queries, cfg)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		got := psmSet(res.PSMs)
		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d PSMs vs %d", batch, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("batch=%d: PSM %s count %d vs %d", batch, k, got[k], n)
			}
		}
		if res.CandidatePSMs() != ref.CandidatePSMs() {
			t.Fatalf("batch=%d: work changed", batch)
		}
	}
}

// TestResultBatchWithNoQueries: streaming mode with an empty query set
// must not deadlock the exchange.
func TestResultBatchWithNoQueries(t *testing.T) {
	peptides, _, _ := testDataset(t, 4, 1, 0)
	cfg := lightConfig()
	cfg.ResultBatch = 8
	res, err := RunInProcess(3, peptides, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PSMs) != 0 || len(res.Stats) != 3 {
		t.Errorf("empty streaming run: %+v", res)
	}
}

// TestResultBatchOverTCP: streaming must also work over the wire.
func TestResultBatchOverTCP(t *testing.T) {
	peptides, queries, _ := testDataset(t, 5, 1, 12)
	cfg := lightConfig()
	cfg.ResultBatch = 3
	a, err := RunInProcess(3, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOverTCP(3, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := psmSet(a.PSMs), psmSet(b.PSMs)
	if len(sa) != len(sb) {
		t.Fatalf("streaming TCP differs: %d vs %d", len(sa), len(sb))
	}
	for k, n := range sa {
		if sb[k] != n {
			t.Fatalf("PSM %s: %d vs %d", k, n, sb[k])
		}
	}
}
