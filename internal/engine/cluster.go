package engine

import (
	"fmt"
	"sync"

	"lbe/internal/mpi"
	"lbe/internal/spectrum"
)

// RunInProcess runs the full distributed search on a virtual cluster of p
// ranks inside this process (one goroutine per rank over the in-process
// transport) and returns the master's result. It is the workhorse of the
// experiments and examples.
func RunInProcess(p int, peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	world := mpi.NewWorld(p)
	defer world.Close()
	return runOnComms(world.Comms(), peptides, queries, cfg)
}

// RunOverTCP runs the same search with the p ranks connected through real
// loopback TCP links, demonstrating wire-level operation; used by the
// transport ablation.
func RunOverTCP(p int, peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	comms, err := mpi.NewTCPCluster(p)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	return runOnComms(comms, peptides, queries, cfg)
}

func runOnComms(comms []mpi.Comm, peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	var wg sync.WaitGroup
	results := make([]*Result, len(comms))
	errs := make([]error, len(comms))
	for r := range comms {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = RunRank(comms[r], peptides, queries, cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: rank %d failed: %w", r, err)
		}
	}
	if results[0] == nil {
		return nil, fmt.Errorf("engine: master produced no result")
	}
	return results[0], nil
}
