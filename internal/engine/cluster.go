package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"lbe/internal/mpi"
	"lbe/internal/spectrum"
)

// RunInProcess runs the full distributed search on a virtual cluster of p
// ranks inside this process (one goroutine per rank over the in-process
// transport) and returns the master's result. It is the workhorse of the
// experiments and examples.
func RunInProcess(p int, peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	//lbe:ignore ctxflow uncancellable convenience wrapper; callers needing cancellation use RunInProcessCtx
	return RunInProcessCtx(context.Background(), p, peptides, queries, cfg)
}

// RunInProcessCtx is RunInProcess with cancellation: when ctx is cancelled
// the communicators are closed, every rank unblocks promptly, and ctx's
// error is returned.
func RunInProcessCtx(ctx context.Context, p int, peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	world := mpi.NewWorld(p)
	defer world.Close()
	return runOnComms(ctx, world.Comms(), peptides, queries, cfg)
}

// RunOverTCP runs the same search with the p ranks connected through real
// loopback TCP links, demonstrating wire-level operation; used by the
// transport ablation.
func RunOverTCP(p int, peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	//lbe:ignore ctxflow uncancellable convenience wrapper; callers needing cancellation use RunOverTCPCtx
	return RunOverTCPCtx(context.Background(), p, peptides, queries, cfg)
}

// RunOverTCPCtx is RunOverTCP with cancellation semantics matching
// RunInProcessCtx.
func RunOverTCPCtx(ctx context.Context, p int, peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	comms, err := mpi.NewTCPCluster(p)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	return runOnComms(ctx, comms, peptides, queries, cfg)
}

// runOnComms drives one RunRankCtx goroutine per endpoint. On ctx
// cancellation — or the first rank failure — it closes every endpoint so
// ranks blocked in communicator receives (Barrier included) unblock
// instead of deadlocking; both transports make Close idempotent, so the
// caller's deferred cleanup stays safe.
func runOnComms(outer context.Context, comms []mpi.Comm, peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	// Every rank lives in this process and builds concurrently, so divide
	// the construction worker budget across them (RunRank on a real
	// multi-process cluster keeps the full per-machine budget).
	cfg.BuildWorkers = divideBuildWorkers(cfg.BuildWorkers, len(comms))

	ctx, cancel := context.WithCancel(outer)
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			for _, c := range comms {
				c.Close()
			}
		case <-done:
		}
	}()

	var wg sync.WaitGroup
	results := make([]*Result, len(comms))
	errs := make([]error, len(comms))
	for r := range comms {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = RunRankCtx(ctx, comms[r], peptides, queries, cfg)
			if errs[r] != nil {
				cancel() // tear the cluster down so peers don't wait forever
			}
		}(r)
	}
	wg.Wait()
	if err := outer.Err(); err != nil {
		return nil, err
	}
	// Prefer a root-cause error over the ErrClosed/cancellation fallout
	// the teardown induced on the surviving ranks.
	var fallout error
	for r, err := range errs {
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("engine: rank %d failed: %w", r, err)
		if errors.Is(err, mpi.ErrClosed) || errors.Is(err, context.Canceled) {
			if fallout == nil {
				fallout = wrapped
			}
			continue
		}
		return nil, wrapped
	}
	if fallout != nil {
		return nil, fallout
	}
	if results[0] == nil {
		return nil, fmt.Errorf("engine: master produced no result")
	}
	return results[0], nil
}
