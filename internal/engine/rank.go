package engine

import (
	"fmt"
	"time"

	"lbe/internal/core"
	"lbe/internal/mpi"
	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// Message tags of the engine protocol.
const (
	tagResults mpi.Tag = 0x10
	tagStats   mpi.Tag = 0x11
)

// wireMatch is the result tuple a worker returns to the master: a virtual
// (local) peptide index plus scoring data; the master resolves Virtual
// through the mapping table (Fig. 4).
type wireMatch struct {
	Query     int32
	Virtual   uint32
	Shared    uint16
	Score     float64
	Precursor float64
}

// RunRank executes one rank of the LBE distributed search. Every rank must
// call it with the same peptide list, query list and configuration (in the
// paper, every machine reads the clustered database and the MS2 dataset).
// The master (rank 0) returns the merged Result; workers return nil.
func RunRank(c mpi.Comm, peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	start := time.Now()
	rank, size := c.Rank(), c.Size()

	// --- LBE preprocessing (deterministic, replicated on every rank) ---
	groupStart := time.Now()
	var grouping core.Grouping
	if cfg.RawOrder {
		grouping = core.IdentityGrouping(len(peptides))
	} else {
		var err error
		grouping, err = core.Group(peptides, cfg.Group)
		if err != nil {
			return nil, fmt.Errorf("engine: rank %d grouping: %w", rank, err)
		}
	}
	groupNanos := time.Since(groupStart).Nanoseconds()

	partStart := time.Now()
	var partition core.Partition
	var err error
	if len(cfg.Weights) > 0 {
		if len(cfg.Weights) != size {
			return nil, fmt.Errorf("engine: %d weights for %d ranks", len(cfg.Weights), size)
		}
		partition, err = core.PartitionWeighted(grouping, cfg.Weights, cfg.Policy, cfg.Seed)
	} else {
		partition, err = core.PartitionClustered(grouping, size, cfg.Policy, cfg.Seed)
	}
	if err != nil {
		return nil, fmt.Errorf("engine: rank %d partition: %w", rank, err)
	}
	partNanos := time.Since(partStart).Nanoseconds()

	// --- local partial index over this rank's peptides ---
	mine := partition.GlobalIndices(grouping, rank)
	local := make([]string, len(mine))
	for i, gidx := range mine {
		local[i] = peptides[gidx]
	}
	buildStart := time.Now()
	ix, err := slm.Build(local, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("engine: rank %d build: %w", rank, err)
	}
	buildNanos := time.Since(buildStart).Nanoseconds()

	// Master constructs the mapping table; workers discard partition
	// metadata after construction (paper §III-D).
	var table core.MappingTable
	if rank == 0 {
		table = core.BuildMappingTable(grouping, partition)
	}

	// --- distributed query phase ---
	if err := mpi.Barrier(c); err != nil {
		return nil, err
	}
	queryPhaseStart := time.Now()

	qs := spectrum.PreprocessAll(queries, cfg.Params.MaxQueryPeaks)

	// The query batch is processed in slabs. With ResultBatch <= 0 there
	// is a single slab (one result message per worker, as the paper
	// describes); with ResultBatch = K each worker streams results every
	// K queries, overlapping search with communication.
	slab := cfg.ResultBatch
	if slab <= 0 {
		slab = len(qs)
	}
	if slab < 1 {
		slab = 1
	}

	flatten := func(offset int, matches [][]slm.Match) []wireMatch {
		wire := make([]wireMatch, 0, 256)
		for q, ms := range matches {
			for _, m := range ms {
				wire = append(wire, wireMatch{
					Query:     int32(offset + q),
					Virtual:   m.Peptide,
					Shared:    m.Shared,
					Score:     m.Score,
					Precursor: m.Precursor,
				})
			}
		}
		return wire
	}

	var work slm.Work
	var queryNanos int64
	var localWire [][]wireMatch // master keeps its own slabs
	numSlabs := 0
	for off := 0; off < len(qs); off += slab {
		end := off + slab
		if end > len(qs) {
			end = len(qs)
		}
		queryStart := time.Now()
		matches, w := searchAll(ix, qs[off:end], cfg.ThreadsPerRank)
		queryNanos += time.Since(queryStart).Nanoseconds()
		work.Add(w)
		wire := flatten(off, matches)
		numSlabs++
		if rank != 0 {
			if err := mpi.SendGob(c, 0, tagResults, wire); err != nil {
				return nil, err
			}
		} else {
			localWire = append(localWire, wire)
		}
	}
	// The no-query edge case still needs one (empty) exchange so the
	// master's receive count is deterministic.
	if numSlabs == 0 {
		numSlabs = 1
		if rank != 0 {
			if err := mpi.SendGob(c, 0, tagResults, []wireMatch{}); err != nil {
				return nil, err
			}
		}
	}

	myStats := RankStats{
		Rank:           rank,
		Peptides:       len(local),
		Rows:           ix.NumRows(),
		IndexBytes:     ix.MemoryBytes(),
		BuildPeakBytes: ix.BuildPeakBytes(),
		BuildNanos:     buildNanos,
		QueryNanos:     queryNanos,
		Work:           work,
	}

	if rank != 0 {
		if err := mpi.SendGob(c, 0, tagStats, myStats); err != nil {
			return nil, err
		}
		return nil, nil
	}

	// --- master: gather, map virtual->global, merge ---
	res := &Result{
		PSMs:           make([][]PSM, len(queries)),
		Stats:          make([]RankStats, size),
		MappingBytes:   table.MemoryBytes(),
		GroupingNanos:  groupNanos,
		PartitionNanos: partNanos,
		Groups:         grouping.NumGroups(),
	}
	res.Stats[0] = myStats
	appendWire := func(from int, ws []wireMatch) error {
		for _, w := range ws {
			if int(w.Query) < 0 || int(w.Query) >= len(queries) {
				return fmt.Errorf("engine: rank %d sent query index %d out of range", from, w.Query)
			}
			gidx, err := table.Lookup(from, w.Virtual)
			if err != nil {
				return fmt.Errorf("engine: mapping rank %d: %w", from, err)
			}
			res.PSMs[w.Query] = append(res.PSMs[w.Query], PSM{
				Peptide:   gidx,
				Shared:    w.Shared,
				Score:     w.Score,
				Precursor: w.Precursor,
				Origin:    from,
			})
		}
		return nil
	}
	for _, wire := range localWire {
		if err := appendWire(0, wire); err != nil {
			return nil, err
		}
	}
	// Every worker sends exactly numSlabs result messages; drain them from
	// any source so fast workers are not blocked behind slow ones.
	for received := 0; received < (size-1)*numSlabs; received++ {
		var ws []wireMatch
		src, err := mpi.RecvGob(c, mpi.AnySource, tagResults, &ws)
		if err != nil {
			return nil, err
		}
		if err := appendWire(src, ws); err != nil {
			return nil, err
		}
	}
	for peer := 1; peer < size; peer++ {
		var st RankStats
		if _, err := mpi.RecvGob(c, peer, tagStats, &st); err != nil {
			return nil, err
		}
		res.Stats[peer] = st
	}

	for q := range res.PSMs {
		sortPSMs(res.PSMs[q])
		if cfg.TopK > 0 && len(res.PSMs[q]) > cfg.TopK {
			res.PSMs[q] = res.PSMs[q][:cfg.TopK]
		}
	}
	res.QueryNanos = time.Since(queryPhaseStart).Nanoseconds()
	res.TotalNanos = time.Since(start).Nanoseconds()
	return res, nil
}
