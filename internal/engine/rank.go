package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lbe/internal/core"
	"lbe/internal/mpi"
	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// Message tags of the engine protocol.
const (
	tagResults mpi.Tag = 0x10
	tagStats   mpi.Tag = 0x11
)

// wireMatch is the result tuple a worker returns to the master: a virtual
// (local) peptide index plus scoring data; the master resolves Virtual
// through the mapping table (Fig. 4).
type wireMatch struct {
	Query     int32
	Virtual   uint32
	Shared    uint16
	Score     float64
	Precursor float64
}

// lbePrep is the deterministic serial LBE preprocessing every rank (and
// the Session) replicates: Algorithm 1 grouping plus the policy partition.
type lbePrep struct {
	grouping  core.Grouping
	partition core.Partition
	groupNs   int64
	partNs    int64
}

// prepare runs grouping and partitioning of the peptide database over p
// machines under cfg.
func prepare(peptides []string, cfg Config, p int) (lbePrep, error) {
	var out lbePrep
	groupStart := time.Now()
	if cfg.RawOrder {
		out.grouping = core.IdentityGrouping(len(peptides))
	} else {
		var err error
		out.grouping, err = core.Group(peptides, cfg.Group)
		if err != nil {
			return out, fmt.Errorf("engine: grouping: %w", err)
		}
	}
	out.groupNs = time.Since(groupStart).Nanoseconds()

	partStart := time.Now()
	var err error
	if len(cfg.Weights) > 0 {
		if len(cfg.Weights) != p {
			return out, fmt.Errorf("engine: %d weights for %d ranks", len(cfg.Weights), p)
		}
		out.partition, err = core.PartitionWeighted(out.grouping, cfg.Weights, cfg.Policy, cfg.Seed)
	} else {
		out.partition, err = core.PartitionClustered(out.grouping, p, cfg.Policy, cfg.Seed)
	}
	if err != nil {
		return out, fmt.Errorf("engine: partition: %w", err)
	}
	out.partNs = time.Since(partStart).Nanoseconds()
	return out, nil
}

// localPeptides extracts machine m's partition of the peptide list.
func (pr lbePrep) localPeptides(peptides []string, m int) []string {
	mine := pr.partition.GlobalIndices(pr.grouping, m)
	local := make([]string, len(mine))
	for i, gidx := range mine {
		local[i] = peptides[gidx]
	}
	return local
}

// RunRank executes one rank of the LBE distributed search. Every rank must
// call it with the same peptide list, query list and configuration (in the
// paper, every machine reads the clustered database and the MS2 dataset).
// The master (rank 0) returns the merged Result; workers return nil.
//
// Each rank builds its partial index with the full cfg.BuildWorkers budget
// (default: one worker per core), which is right when ranks are separate
// machines. Callers running several ranks inside one process should set
// cfg.BuildWorkers to divide the cores among them; the in-process cluster
// runners do this automatically.
func RunRank(c mpi.Comm, peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	//lbe:ignore ctxflow uncancellable convenience wrapper; callers needing cancellation use RunRankCtx
	return RunRankCtx(context.Background(), c, peptides, queries, cfg)
}

// RunRankCtx is RunRank with cancellation: when ctx is cancelled the
// pipeline stages shut down between batches and the rank returns ctx's
// error. A rank blocked in a communicator receive is only released when
// the communicator is closed; the cluster runners (RunInProcessCtx,
// RunOverTCPCtx) do that automatically on cancellation.
func RunRankCtx(ctx context.Context, c mpi.Comm, peptides []string, queries []spectrum.Experimental, cfg Config) (*Result, error) {
	start := time.Now()
	rank, size := c.Rank(), c.Size()

	// Internal cancellation lets the master stop its own pipeline the
	// moment merging fails, instead of searching the rest of the run just
	// to report the error. Remote messages are still drained so no
	// goroutine is left parked in a communicator receive.
	outer := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// --- LBE preprocessing (deterministic, replicated on every rank) ---
	prep, err := prepare(peptides, cfg, size)
	if err != nil {
		return nil, fmt.Errorf("engine: rank %d: %w", rank, err)
	}

	// --- local partial index over this rank's peptides ---
	local := prep.localPeptides(peptides, rank)
	buildStart := time.Now()
	ix, err := slm.BuildWorkers(local, cfg.Params, cfg.BuildWorkers)
	if err != nil {
		return nil, fmt.Errorf("engine: rank %d build: %w", rank, err)
	}
	buildNanos := time.Since(buildStart).Nanoseconds()

	// Master constructs the mapping table; workers discard partition
	// metadata after construction (paper §III-D).
	var table core.MappingTable
	if rank == 0 {
		table = core.BuildMappingTable(prep.grouping, prep.partition)
	}

	// --- pipelined query phase ---
	if err := mpi.Barrier(c); err != nil {
		return nil, err
	}
	queryPhaseStart := time.Now()

	bsize := cfg.effectiveBatch(len(queries))
	nb := numBatches(len(queries), bsize)
	src := batchSource(ctx, queries, bsize)
	pp := preprocessStage(ctx, src, cfg.Params.MaxQueryPeaks)
	sr := searchStage(ctx, ix, pp, cfg.newPool())

	var work slm.Work
	var queryNanos int64

	if rank != 0 {
		// Worker: stream each searched batch to the master as soon as it
		// is ready, overlapping the next batch's search with the send.
		for s := range sr {
			work.Add(s.work)
			queryNanos += s.nanos
			if err := mpi.SendGob(c, 0, tagResults, flattenWire(s.offset, s.matches)); err != nil {
				return nil, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		myStats := rankStats(rank, local, ix, buildNanos, queryNanos, work)
		if err := mpi.SendGob(c, 0, tagStats, myStats); err != nil {
			return nil, err
		}
		return nil, nil
	}

	// --- master: incremental merge, overlapped with its own search ---
	res := &Result{
		PSMs:           make([][]PSM, len(queries)),
		Stats:          make([]RankStats, size),
		MappingBytes:   table.MemoryBytes(),
		GroupingNanos:  prep.groupNs,
		PartitionNanos: prep.partNs,
		Groups:         prep.grouping.NumGroups(),
	}

	type gathered struct {
		from int
		wire []wireMatch
		err  error
	}
	mergeCh := make(chan gathered, size)
	var producers sync.WaitGroup

	// Local feeder: the master's own searched batches.
	producers.Add(1)
	go func() {
		defer producers.Done()
		for s := range sr {
			work.Add(s.work)
			queryNanos += s.nanos
			if !send(ctx, mergeCh, gathered{from: 0, wire: flattenWire(s.offset, s.matches)}) {
				return
			}
		}
	}()
	// Remote drainer: every worker sends exactly nb result messages;
	// accept them from any source so fast workers are never blocked
	// behind slow ones. Sends below are unconditional (no ctx select):
	// the merge loop consumes mergeCh until it closes even after an
	// error, so the drainer always runs to completion instead of leaking
	// into a receive on a still-open communicator.
	producers.Add(1)
	go func() {
		defer producers.Done()
		for received := 0; received < (size-1)*nb; received++ {
			var ws []wireMatch
			src, err := mpi.RecvGob(c, mpi.AnySource, tagResults, &ws)
			if err != nil {
				mergeCh <- gathered{err: err}
				return
			}
			mergeCh <- gathered{from: src, wire: ws}
		}
	}()
	go func() {
		producers.Wait()
		close(mergeCh)
	}()

	var mergeErr error
	for g := range mergeCh {
		if mergeErr != nil {
			continue // discard: drain the remote producer to completion
		}
		if g.err != nil {
			mergeErr = g.err
		} else {
			mergeErr = mergeWire(res, table, g.from, g.wire, len(queries))
		}
		if mergeErr != nil {
			// Stop the master's own (expensive) search pipeline; the
			// drainer keeps receiving the remaining (cheap) messages so
			// the communicator is left without a parked receiver.
			cancel()
		}
	}
	if mergeErr != nil {
		return nil, mergeErr
	}
	if err := outer.Err(); err != nil {
		return nil, err
	}

	res.Stats[0] = rankStats(0, local, ix, buildNanos, queryNanos, work)
	for peer := 1; peer < size; peer++ {
		var st RankStats
		if _, err := mpi.RecvGob(c, peer, tagStats, &st); err != nil {
			return nil, err
		}
		res.Stats[peer] = st
	}

	for q := range res.PSMs {
		sortPSMs(res.PSMs[q])
		if cfg.TopK > 0 && len(res.PSMs[q]) > cfg.TopK {
			res.PSMs[q] = res.PSMs[q][:cfg.TopK]
		}
	}
	res.QueryNanos = time.Since(queryPhaseStart).Nanoseconds()
	res.TotalNanos = time.Since(start).Nanoseconds()
	return res, nil
}

// mergeWire resolves one gathered wire batch through the mapping table
// into the master result.
func mergeWire(res *Result, table core.MappingTable, from int, wire []wireMatch, nQueries int) error {
	for _, w := range wire {
		if int(w.Query) < 0 || int(w.Query) >= nQueries {
			return fmt.Errorf("engine: rank %d sent query index %d out of range", from, w.Query)
		}
		gidx, err := table.Lookup(from, w.Virtual)
		if err != nil {
			return fmt.Errorf("engine: mapping rank %d: %w", from, err)
		}
		res.PSMs[w.Query] = append(res.PSMs[w.Query], PSM{
			Peptide:   gidx,
			Shared:    w.Shared,
			Score:     w.Score,
			Precursor: w.Precursor,
			Origin:    from,
		})
	}
	return nil
}

// rankStats assembles one rank's load accounting.
func rankStats(rank int, local []string, ix *slm.Index, buildNanos, queryNanos int64, work slm.Work) RankStats {
	return RankStats{
		Rank:           rank,
		Peptides:       len(local),
		Rows:           ix.NumRows(),
		IndexBytes:     ix.MemoryBytes(),
		BuildPeakBytes: ix.BuildPeakBytes(),
		BuildNanos:     buildNanos,
		QueryNanos:     queryNanos,
		Work:           work,
	}
}
