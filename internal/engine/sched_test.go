package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"lbe/internal/core"
	"lbe/internal/spectrum"
)

// TestSchedulerMatchesSerial is the execution layer's equivalence
// guarantee: for every policy × shard count × worker count × chunk size ×
// scheduling mode, the session's PSMs are identical to the RunSerial
// reference in every field (and the deterministic work accounting agrees),
// no matter how the chunks were scheduled or stolen.
func TestSchedulerMatchesSerial(t *testing.T) {
	peptides, queries, _ := testDataset(t, 10, 2, 60)
	base := lightConfig()

	serial, err := RunSerial(peptides, queries, base)
	if err != nil {
		t.Fatal(err)
	}
	nPSMs := 0
	for _, qs := range serial.PSMs {
		nPSMs += len(qs)
	}
	if nPSMs == 0 {
		t.Fatal("serial reference found no PSMs; dataset too small")
	}

	for _, policy := range []core.Policy{core.Chunk, core.Cyclic} {
		for _, shards := range []int{1, 3} {
			cfg := SessionConfig{Config: base, Shards: shards}
			cfg.Policy = policy
			cfg.Seed = 5
			cfg.BatchSize = 17
			sess, err := NewSession(peptides, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 5} {
				for _, chunk := range []int{0, 1, 4, 1000} {
					for _, stealing := range []bool{false, true} {
						label := fmt.Sprintf("%v/shards=%d/workers=%d/chunk=%d/steal=%v",
							policy, shards, workers, chunk, stealing)
						sess.Tune(workers, 0)
						sess.TuneScheduler(chunk, stealing)
						res, err := sess.Search(context.Background(), queries)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						requireSamePSMs(t, label, res.PSMs, serial.PSMs)
						if res.CandidatePSMs() != serial.CandidatePSMs() {
							t.Fatalf("%s: scored %d, serial %d",
								label, res.CandidatePSMs(), serial.CandidatePSMs())
						}
					}
				}
			}
			sess.Close()
		}
	}
}

// TestSchedulerTelemetry: the session's lifetime scheduler stats must
// account every batch, agree with the per-shard work ledger, and report
// steals only in stealing mode.
func TestSchedulerTelemetry(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 30)
	cfg := SessionConfig{Config: lightConfig(), Shards: 3}
	cfg.ThreadsPerRank = 4
	cfg.ChunkSize = 2
	cfg.Stealing = true
	cfg.BatchSize = 10
	sess, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if _, err := sess.Search(context.Background(), queries); err != nil {
		t.Fatal(err)
	}
	st := sess.SchedulerStats()
	if st.Batches == 0 || st.Chunks == 0 {
		t.Fatalf("scheduler stats did not accumulate: %+v", st)
	}
	if !st.Stealing || st.ChunkSize != 2 {
		t.Fatalf("scheduler config not reflected: %+v", st)
	}
	if len(st.Workers) != 4 {
		t.Fatalf("%d lifetime workers, want 4", len(st.Workers))
	}
	var byWorker int64
	var workSum int64
	for _, w := range st.Workers {
		byWorker += int64(w.Chunks)
		workSum += w.Work.Scored
	}
	if byWorker != st.Chunks {
		t.Fatalf("chunk totals disagree: workers %d vs %d", byWorker, st.Chunks)
	}
	var shardScored int64
	for _, rs := range sess.Stats() {
		shardScored += rs.Work.Scored
	}
	if workSum != shardScored {
		t.Fatalf("worker work %d != shard work %d", workSum, shardScored)
	}

	// Static mode must stay steal-free.
	sess.TuneScheduler(2, false)
	before := sess.SchedulerStats().Steals
	if _, err := sess.Search(context.Background(), queries); err != nil {
		t.Fatal(err)
	}
	after := sess.SchedulerStats()
	if after.Steals != before {
		t.Fatalf("static run stole: %d -> %d", before, after.Steals)
	}
	if after.Stealing {
		t.Fatal("SchedulerStats.Stealing must track the tuned mode")
	}
}

// TestSchedulerCancelledRunsLeakNothing: repeated cancelled searches under
// both scheduling modes must leave the goroutine count where it started.
func TestSchedulerCancelledRunsLeakNothing(t *testing.T) {
	peptides, queries, _ := testDataset(t, 8, 2, 60)
	cfg := SessionConfig{Config: lightConfig(), Shards: 3}
	cfg.ThreadsPerRank = 4
	cfg.BatchSize = 2
	sess, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	base := runtime.NumGoroutine()
	for _, stealing := range []bool{true, false} {
		sess.TuneScheduler(1, stealing)
		for i := 0; i < 3; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(time.Duration(i) * time.Millisecond)
				cancel()
			}()
			if _, err := sess.Search(ctx, queries); err == nil {
				t.Logf("steal=%v run %d finished before cancellation", stealing, i)
			}
			cancel()
		}
	}
	waitForGoroutines(t, base)
}

// TestStreamSentinelErrors: double Close and Push-after-Close must return
// ErrStreamClosed instead of panicking on the input channel.
func TestStreamSentinelErrors(t *testing.T) {
	peptides, queries, _ := testDataset(t, 4, 1, 5)
	sess, err := NewSession(peptides, SessionConfig{Config: lightConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	st, err := sess.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push(queries); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := st.Close(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("second Close = %v, want ErrStreamClosed", err)
	}
	if err := st.Push(queries); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Push after Close = %v, want ErrStreamClosed", err)
	}
	for range st.Results() {
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamConcurrentPushCancelClose hammers one stream with racing
// producers, closers and cancellers (run under -race in CI): whatever the
// interleaving, nothing may panic, and every error must be a sentinel or
// the context error.
func TestStreamConcurrentPushCancelClose(t *testing.T) {
	peptides, queries, _ := testDataset(t, 6, 2, 20)
	cfg := SessionConfig{Config: lightConfig(), Shards: 2}
	cfg.ThreadsPerRank = 2
	cfg.BatchSize = 4
	sess, err := NewSession(peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	for trial := 0; trial < 8; trial++ {
		st, err := sess.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errCh := make(chan error, 64)
		for p := 0; p < 3; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					if err := st.Push(queries); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := st.Close(); err != nil && !errors.Is(err, ErrStreamClosed) {
				errCh <- fmt.Errorf("close: %w", err)
			}
		}()
		go func() {
			defer wg.Done()
			st.Cancel()
		}()
		for range st.Results() {
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			if !errors.Is(err, ErrStreamClosed) && !errors.Is(err, context.Canceled) {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
		}
	}
}

// skewedDataset builds a corpus whose clustered order concentrates the
// expensive peptides: sorted by ascending length, the Chunk policy hands
// the last shard the longest peptides (the most variants and ion
// postings), reproducing the skew LBE's figures show for chunk
// partitioning.
func skewedDataset(tb testing.TB, families, homologs, nspectra int) ([]string, []spectrum.Experimental) {
	peptides, queries, _ := testDataset(tb, families, homologs, nspectra)
	sort.Slice(peptides, func(i, j int) bool {
		if len(peptides[i]) != len(peptides[j]) {
			return len(peptides[i]) < len(peptides[j])
		}
		return peptides[i] < peptides[j]
	})
	return peptides, queries
}

// BenchmarkStealVsStatic measures the same skewed multi-shard search under
// the static baseline and the stealing scheduler. CI runs it once
// (-benchtime=1x) for the artifact; locally, -benchtime=5x+ gives stable
// ratios on multi-core machines.
func BenchmarkStealVsStatic(b *testing.B) {
	peptides, queries := skewedDataset(b, 12, 2, 200)
	for _, stealing := range []bool{false, true} {
		name := "static"
		if stealing {
			name = "stealing"
		}
		b.Run(name, func(b *testing.B) {
			cfg := SessionConfig{Config: lightConfig(), Shards: 4}
			cfg.Policy = core.Chunk
			cfg.RawOrder = true
			cfg.ThreadsPerRank = runtime.GOMAXPROCS(0)
			cfg.Stealing = stealing
			cfg.TopK = 5
			sess, err := NewSession(peptides, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Search(context.Background(), queries); err != nil {
					b.Fatal(err)
				}
			}
			st := sess.SchedulerStats()
			b.ReportMetric(float64(st.Steals)/float64(b.N), "steals/op")
			b.ReportMetric(float64(len(queries)), "queries/op")
		})
	}
}
