package engine

import (
	"context"
	"runtime"
	"time"

	"lbe/internal/sched"
	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// This file holds the channel-based query pipeline every run mode is built
// on: queries flow in batches through preprocess → search → merge stages,
// overlapping compute with communication. RunRankCtx wires the stages to a
// communicator (one partition per rank); Session wires them to in-process
// shards and keeps them hot across repeated query batches.

// pipeDepth is the per-stage channel buffer: enough slack to keep
// neighboring stages busy without unbounded queueing.
const pipeDepth = 2

// divideBuildWorkers splits an index-construction worker budget (0 means
// one per available core) across n concurrent builders sharing this
// process, rounding up so every builder gets at least one worker.
func divideBuildWorkers(budget, n int) int {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return (budget + n - 1) / n
}

// batch is one slice of the query stream flowing through the pipeline.
type batch struct {
	seq    int // batch sequence number, 0-based
	offset int // global index of the batch's first query
	qs     []spectrum.Experimental
}

// searched is a batch after the local search stage.
type searched struct {
	batch
	matches [][]slm.Match // per query in the batch
	work    slm.Work
	nanos   int64 // wall time spent searching the batch
}

// send delivers v on ch unless ctx is cancelled first.
func send[T any](ctx context.Context, ch chan<- T, v T) bool {
	select {
	case ch <- v:
		return true
	case <-ctx.Done():
		return false
	}
}

// recv takes the next value from ch; ok is false once ch is closed and
// drained or ctx is cancelled.
func recv[T any](ctx context.Context, ch <-chan T) (T, bool) {
	select {
	case v, ok := <-ch:
		return v, ok
	case <-ctx.Done():
		var zero T
		return zero, false
	}
}

// effectiveBatch resolves the pipeline batch size for an n-query run:
// BatchSize if set, else the legacy ResultBatch, else the whole run as a
// single batch (the paper's one-message-per-worker description).
func (cfg Config) effectiveBatch(n int) int {
	b := cfg.BatchSize
	if b <= 0 {
		b = cfg.ResultBatch
	}
	if b <= 0 {
		b = n
	}
	if b < 1 {
		b = 1
	}
	return b
}

// numBatches returns how many batches batchSource emits for n queries:
// always at least one, so exchange counts stay deterministic even for an
// empty query set.
func numBatches(n, size int) int {
	if n == 0 {
		return 1
	}
	return (n + size - 1) / size
}

// forEachBatch invokes fn on successive size-query slices of qs (size is
// clamped to at least 1) until qs is exhausted or fn returns false.
func forEachBatch(qs []spectrum.Experimental, size int, fn func(off int, qs []spectrum.Experimental) bool) {
	if size < 1 {
		size = 1
	}
	for off := 0; off < len(qs); off += size {
		end := off + size
		if end > len(qs) {
			end = len(qs)
		}
		if !fn(off, qs[off:end]) {
			return
		}
	}
}

// batchSource slices queries into size-query batches on a channel. An
// empty query set still yields one empty batch.
func batchSource(ctx context.Context, queries []spectrum.Experimental, size int) <-chan batch {
	out := make(chan batch, pipeDepth)
	go func() {
		defer close(out)
		if len(queries) == 0 {
			send(ctx, out, batch{})
			return
		}
		seq := 0
		forEachBatch(queries, size, func(off int, qs []spectrum.Experimental) bool {
			ok := send(ctx, out, batch{seq: seq, offset: off, qs: qs})
			seq++
			return ok
		})
	}()
	return out
}

// preprocessStage applies the paper's query preprocessing (top-N peaks,
// base-peak normalization) to each batch as it flows past.
func preprocessStage(ctx context.Context, in <-chan batch, topN int) <-chan batch {
	out := make(chan batch, pipeDepth)
	go func() {
		defer close(out)
		for {
			b, ok := recv(ctx, in)
			if !ok {
				return
			}
			b.qs = spectrum.PreprocessAll(b.qs, topN)
			if !send(ctx, out, b) {
				return
			}
		}
	}()
	return out
}

// newPool builds the scheduler pool the config describes: ThreadsPerRank
// workers over per-shard chunk deques, stealing or static per
// cfg.Stealing, cfg.ChunkSize granularity (0 = auto-tuned).
func (cfg Config) newPool() *sched.Pool {
	return sched.NewPool(sched.Options{
		Workers:   cfg.ThreadsPerRank,
		ChunkSize: cfg.ChunkSize,
		Stealing:  cfg.Stealing,
	})
}

// searchStage searches each preprocessed batch against the local index on
// the rank's scheduler pool, accounting work and wall time per batch.
func searchStage(ctx context.Context, ix *slm.Index, in <-chan batch, pool *sched.Pool) <-chan searched {
	out := make(chan searched, pipeDepth)
	go func() {
		defer close(out)
		for {
			b, ok := recv(ctx, in)
			if !ok {
				return
			}
			start := time.Now()
			res, err := pool.Run(ctx, []*slm.Index{ix}, b.qs)
			if err != nil {
				return // cancelled; the stage's consumers watch ctx too
			}
			s := searched{
				batch:   b,
				matches: res.Matches[0],
				work:    res.Work(),
				nanos:   time.Since(start).Nanoseconds(),
			}
			if !send(ctx, out, s) {
				return
			}
		}
	}()
	return out
}

// flattenWire projects a searched batch into the wire tuples a worker
// ships to the master.
func flattenWire(offset int, matches [][]slm.Match) []wireMatch {
	wire := make([]wireMatch, 0, 256)
	for q, ms := range matches {
		for _, m := range ms {
			wire = append(wire, wireMatch{
				Query:     int32(offset + q),
				Virtual:   m.Peptide,
				Shared:    m.Shared,
				Score:     m.Score,
				Precursor: m.Precursor,
			})
		}
	}
	return wire
}
